(** Types carried by IR values across abstraction levels.

    NN values are shaped tensors; VECTOR abstracts them to flat cleartext
    vectors; SIHE and CKKS distinguish ciphertexts ([Cipher], and the
    transient three-polynomial [Cipher3] produced by ciphertext-ciphertext
    multiplication), encoded plaintexts ([Plain]) and cleartext vectors
    inherited from the VECTOR level. Element types are uniformly float. *)

type t =
  | Tensor of int array (** dimensions, row-major *)
  | Vec of int (** cleartext vector; SIHE/CKKS inherit it from VECTOR *)
  | Plain
  | Cipher
  | Cipher3
  | Scalar

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val tensor_elems : t -> int
(** Number of scalar elements; @raise Invalid_argument for non-tensor /
    non-vector types. *)

val is_ciphertext : t -> bool
