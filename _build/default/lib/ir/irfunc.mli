(** IR functions: SSA dataflow graphs with a constant pool.

    Nodes are append-only and identified by dense integer ids; arguments
    always reference earlier nodes, so a function is in topological order
    by construction. Constants (weights, biases, plaintext masks) live in
    a per-function pool keyed by name, keeping the graph small and letting
    the code generator externalise them — the paper's Section 3.4 stores
    weights outside the generated C for exactly this reason. *)

type node = {
  id : int;
  op : Op.t;
  args : int array;
  ty : Types.t;
  mutable scale : float; (** CKKS annotation; 0.0 = unannotated *)
  mutable node_level : int; (** CKKS annotation; -1 = unannotated *)
  mutable origin : string; (** provenance: which source operator this node
                               serves; drives the per-phase breakdown of
                               the paper's Figure 6 *)
}

type t

val create : name:string -> level:Level.t -> params:(string * Types.t) list -> t
val name : t -> string
val level : t -> Level.t
val params : t -> (string * Types.t) array

val add : t -> Op.t -> int array -> Types.t -> int
(** Append a node; returns its id. Argument ids must already exist. *)

val param : t -> int -> int
(** The node id of parameter [i] (param nodes are pre-created). *)

val node : t -> int -> node
val num_nodes : t -> int
val iter : t -> (node -> unit) -> unit
val fold : t -> init:'a -> f:('a -> node -> 'a) -> 'a

val set_returns : t -> int list -> unit
val returns : t -> int list

val add_const : t -> string -> ?dims:int array -> float array -> unit
(** Register a named constant. Re-registering the same name with identical
    contents is a no-op; differing contents raise. *)

val fresh_const : t -> prefix:string -> ?dims:int array -> float array -> string
(** Register under a generated unique name and return it. *)

val const : t -> string -> float array
val const_dims : t -> string -> int array
val const_names : t -> string list
val has_const : t -> string -> bool

val uses : t -> int array
(** [uses f] counts, per node id, how many argument references point at
    it (returns included). *)

val map_rebuild :
  t ->
  name:string ->
  level:Level.t ->
  params:(string * Types.t) list ->
  emit:(t -> (int -> int) -> node -> int) ->
  t
(** Generic lowering/rewriting skeleton: create a fresh function, walk the
    source in order, let [emit dst lookup node] translate each node and
    return the id its result now lives at ([lookup] maps already-translated
    source ids to destination ids). Returns are remapped automatically,
    and the source's constant pool is copied. *)
