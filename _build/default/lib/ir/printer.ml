let pp_node fmt (n : Irfunc.node) =
  let args = String.concat " " (List.map (Printf.sprintf "%%%d") (Array.to_list n.args)) in
  Format.fprintf fmt "  %%%d = %s%s%s : %s" n.id (Op.name n.op)
    (if args = "" then "" else " ")
    args
    (Types.to_string n.ty);
  if n.scale > 0.0 then Format.fprintf fmt " scale=2^%.2f" (Float.log2 n.scale);
  if n.node_level >= 0 then Format.fprintf fmt " level=%d" n.node_level;
  Format.fprintf fmt "@,"

let pp fmt f =
  let params =
    Irfunc.params f |> Array.to_list
    |> List.mapi (fun i (name, ty) -> Printf.sprintf "%%%d /*%s*/: %s" i name (Types.to_string ty))
    |> String.concat ", "
  in
  Format.fprintf fmt "@[<v>func @%s(%s)  level=%s@," (Irfunc.name f) params
    (Level.to_string (Irfunc.level f));
  Irfunc.iter f (fun n ->
      match n.op with
      | Op.Param _ -> ()
      | _ -> pp_node fmt n);
  Format.fprintf fmt "  return %s@,"
    (String.concat " " (List.map (Printf.sprintf "%%%d") (Irfunc.returns f)));
  let consts = Irfunc.const_names f in
  if consts <> [] then
    Format.fprintf fmt "  // constants: %s@,"
      (String.concat ", "
         (List.map
            (fun c -> Printf.sprintf "%s[%d]" c (Array.length (Irfunc.const f c)))
            consts));
  Format.fprintf fmt "@]"

let to_string f = Format.asprintf "%a" pp f

let line_count f =
  Irfunc.fold f ~init:2 ~f:(fun acc n -> match n.op with Op.Param _ -> acc | _ -> acc + 1)
