type t = { pass_name : string; pass_level : Level.t; run : Irfunc.t -> Irfunc.t }

let make ~name ~level run = { pass_name = name; pass_level = level; run }

type timing = { timed_pass : string; timed_level : Level.t; seconds : float }

let run_pipeline ?(verify_after = true) passes f =
  let timings = ref [] in
  let out =
    List.fold_left
      (fun acc p ->
        let t0 = Unix.gettimeofday () in
        let next = p.run acc in
        let dt = Unix.gettimeofday () -. t0 in
        timings := { timed_pass = p.pass_name; timed_level = p.pass_level; seconds = dt } :: !timings;
        if verify_after then begin
          match Verify.verify_result next with
          | Ok () -> ()
          | Error m ->
            raise (Verify.Ill_formed (Printf.sprintf "after pass %s: %s" p.pass_name m))
        end;
        next)
      f passes
  in
  (out, List.rev !timings)

let level_seconds timings =
  List.filter_map
    (fun lvl ->
      let s =
        List.fold_left
          (fun acc t -> if t.timed_level = lvl then acc +. t.seconds else acc)
          0.0 timings
      in
      if s > 0.0 || List.exists (fun t -> t.timed_level = lvl) timings then Some (lvl, s) else None)
    Level.all
