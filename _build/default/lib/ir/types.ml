type t =
  | Tensor of int array
  | Vec of int
  | Plain
  | Cipher
  | Cipher3
  | Scalar

let equal a b =
  match (a, b) with
  | Tensor x, Tensor y -> x = y
  | Vec x, Vec y -> x = y
  | Plain, Plain | Cipher, Cipher | Cipher3, Cipher3 | Scalar, Scalar -> true
  | (Tensor _ | Vec _ | Plain | Cipher | Cipher3 | Scalar), _ -> false

let to_string = function
  | Tensor dims ->
    "tensor<" ^ String.concat "x" (Array.to_list (Array.map string_of_int dims)) ^ ">"
  | Vec n -> Printf.sprintf "vec<%d>" n
  | Plain -> "plain"
  | Cipher -> "cipher"
  | Cipher3 -> "cipher3"
  | Scalar -> "scalar"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let tensor_elems = function
  | Tensor dims -> Array.fold_left ( * ) 1 dims
  | Vec n -> n
  | Plain | Cipher | Cipher3 | Scalar -> invalid_arg "Types.tensor_elems"

let is_ciphertext = function
  | Cipher | Cipher3 -> true
  | Tensor _ | Vec _ | Plain | Scalar -> false
