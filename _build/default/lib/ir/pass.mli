(** Pass manager.

    A pass transforms an IR function and is tagged with the level whose
    compile-time budget it belongs to, so the driver can report the
    per-level breakdown of Figure 5. Passes are verified after execution
    unless disabled (the verifier is itself part of the infrastructure
    budget). *)

type t = {
  pass_name : string;
  pass_level : Level.t;
  run : Irfunc.t -> Irfunc.t;
}

val make : name:string -> level:Level.t -> (Irfunc.t -> Irfunc.t) -> t

type timing = { timed_pass : string; timed_level : Level.t; seconds : float }

val run_pipeline :
  ?verify_after:bool -> t list -> Irfunc.t -> Irfunc.t * timing list
(** Run passes in order, timing each. [verify_after] defaults to true.
    @raise Verify.Ill_formed if a pass breaks the invariants. *)

val level_seconds : timing list -> (Level.t * float) list
(** Aggregate timings per level, in level order, for the Figure 5 rows. *)
