type node = {
  id : int;
  op : Op.t;
  args : int array;
  ty : Types.t;
  mutable scale : float;
  mutable node_level : int;
  mutable origin : string; (* provenance: the NN operator this serves *)
}

type t = {
  fn_name : string;
  fn_level : Level.t;
  fn_params : (string * Types.t) array;
  mutable nodes : node array;
  mutable count : int;
  mutable rets : int list;
  consts : (string, float array * int array) Hashtbl.t;
  mutable gensym : int;
}

let dummy_node = { id = 0; op = Op.Param 0; args = [||]; ty = Types.Scalar; scale = 0.0; node_level = -1; origin = "" }

let name t = t.fn_name
let level t = t.fn_level
let params t = t.fn_params

let grow t =
  if t.count = Array.length t.nodes then begin
    let bigger = Array.make (2 * t.count) t.nodes.(0) in
    Array.blit t.nodes 0 bigger 0 t.count;
    t.nodes <- bigger
  end

let add t op args ty =
  Array.iter (fun a -> if a < 0 || a >= t.count then invalid_arg "Irfunc.add: bad arg id") args;
  (match Op.arity op with
  | Some n when n <> Array.length args ->
    invalid_arg (Printf.sprintf "Irfunc.add: %s expects %d args" (Op.name op) n)
  | _ -> ());
  grow t;
  let id = t.count in
  t.nodes.(id) <- { id; op; args = Array.copy args; ty; scale = 0.0; node_level = -1; origin = "" };
  t.count <- id + 1;
  id

let create ~name ~level ~params =
  let fn_params = Array.of_list params in
  let t =
    {
      fn_name = name;
      fn_level = level;
      fn_params;
      nodes = Array.make 16 dummy_node;
      count = 0;
      rets = [];
      consts = Hashtbl.create 16;
      gensym = 0;
    }
  in
  (* Parameter nodes occupy ids 0 .. num_params-1. *)
  Array.iteri (fun i (_, ty) -> ignore (add t (Op.Param i) [||] ty)) fn_params;
  t

let param t i =
  if i < 0 || i >= Array.length t.fn_params then invalid_arg "Irfunc.param";
  i

let node t i =
  if i < 0 || i >= t.count then invalid_arg "Irfunc.node";
  t.nodes.(i)

let num_nodes t = t.count

let iter t f =
  for i = 0 to t.count - 1 do
    f t.nodes.(i)
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun n -> acc := f !acc n);
  !acc

let set_returns t rets =
  List.iter (fun r -> if r < 0 || r >= t.count then invalid_arg "Irfunc.set_returns") rets;
  t.rets <- rets

let returns t = t.rets

let add_const t name ?(dims = [||]) data =
  match Hashtbl.find_opt t.consts name with
  | Some (old, _) when old = data -> ()
  | Some _ -> invalid_arg (Printf.sprintf "Irfunc.add_const: %s redefined" name)
  | None -> Hashtbl.add t.consts name (data, dims)

let fresh_const t ~prefix ?(dims = [||]) data =
  t.gensym <- t.gensym + 1;
  let name = Printf.sprintf "%s_%d" prefix t.gensym in
  add_const t name ~dims data;
  name

let const t name =
  match Hashtbl.find_opt t.consts name with
  | Some (d, _) -> d
  | None -> invalid_arg (Printf.sprintf "Irfunc.const: unknown %s" name)

let const_dims t name =
  match Hashtbl.find_opt t.consts name with
  | Some (_, dims) -> dims
  | None -> invalid_arg (Printf.sprintf "Irfunc.const_dims: unknown %s" name)

let const_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.consts [] |> List.sort compare
let has_const t name = Hashtbl.mem t.consts name

let uses t =
  let u = Array.make (max 1 t.count) 0 in
  iter t (fun n -> Array.iter (fun a -> u.(a) <- u.(a) + 1) n.args);
  List.iter (fun r -> u.(r) <- u.(r) + 1) t.rets;
  u

let map_rebuild src ~name ~level ~params ~emit =
  let dst = create ~name ~level ~params in
  (* Force param nodes so lowering can reference them. *)
  if params <> [] then ignore (param dst 0);
  Hashtbl.iter (fun k (d, dims) -> add_const dst k ~dims d) src.consts;
  let map = Array.make (max 1 src.count) (-1) in
  let lookup i =
    if map.(i) < 0 then invalid_arg "Irfunc.map_rebuild: forward reference";
    map.(i)
  in
  iter src (fun n -> map.(n.id) <- emit dst lookup n);
  set_returns dst (List.map lookup src.rets);
  dst
