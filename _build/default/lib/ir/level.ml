type t = Nn | Vector | Sihe | Ckks | Poly

let to_string = function
  | Nn -> "NN"
  | Vector -> "VECTOR"
  | Sihe -> "SIHE"
  | Ckks -> "CKKS"
  | Poly -> "POLY"

let all = [ Nn; Vector; Sihe; Ckks; Poly ]

let lower_target = function
  | Nn -> Some Vector
  | Vector -> Some Sihe
  | Sihe -> Some Ckks
  | Ckks -> Some Poly
  | Poly -> None
