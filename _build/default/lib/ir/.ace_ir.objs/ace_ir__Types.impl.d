lib/ir/types.ml: Array Format Printf String
