lib/ir/verify.mli: Irfunc
