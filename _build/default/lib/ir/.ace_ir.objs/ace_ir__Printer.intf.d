lib/ir/printer.mli: Format Irfunc
