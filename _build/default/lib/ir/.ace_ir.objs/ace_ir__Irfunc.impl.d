lib/ir/irfunc.ml: Array Hashtbl Level List Op Printf Types
