lib/ir/pass.ml: Irfunc Level List Printf Unix Verify
