lib/ir/verify.ml: Array Irfunc Level Op Printf Types
