lib/ir/op.ml: Float Level Printf
