lib/ir/printer.ml: Array Float Format Irfunc Level List Op Printf String Types
