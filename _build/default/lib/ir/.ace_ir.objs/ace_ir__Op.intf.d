lib/ir/op.mli: Level
