lib/ir/level.mli:
