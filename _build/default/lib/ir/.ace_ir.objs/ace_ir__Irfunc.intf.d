lib/ir/irfunc.mli: Level Op Types
