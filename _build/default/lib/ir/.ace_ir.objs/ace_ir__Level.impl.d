lib/ir/level.ml:
