lib/ir/pass.mli: Irfunc Level
