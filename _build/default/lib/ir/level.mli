(** The five abstraction levels of the ANT-ACE IR (paper Table 2).

    A function is tagged with the level it currently sits at; lowering
    passes move whole functions one level down. POLY is represented by a
    separate statement-based IR ({!Ace_poly_ir}) because it introduces RNS
    loops; it still appears here so pass bookkeeping and compile-time
    breakdowns (Figure 5) can attribute work to it. *)

type t = Nn | Vector | Sihe | Ckks | Poly

val to_string : t -> string
val all : t list

val lower_target : t -> t option
(** The next level down, [None] from [Poly]. *)
