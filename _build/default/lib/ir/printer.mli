(** Textual rendering of IR functions, in an SSA listing style:

    {v
    func @linear_infer(%0: tensor<84x1>) -> tensor<10x1>  level=NN
      %1 = weight(fc.weight) : tensor<10x84>
      %2 = weight(fc.bias) : tensor<10x1>
      %3 = NN.gemm %0 %1 %2 : tensor<10x1>
      return %3
    v}

    Used by the Section-4 walk-through example, by golden tests, and by
    compile-statistics reporting (IR line counts per level). *)

val pp : Format.formatter -> Irfunc.t -> unit
val to_string : Irfunc.t -> string

val line_count : Irfunc.t -> int
(** Number of instruction lines the listing contains (the paper reports
    POLY-IR size in lines for the gemv example). *)
