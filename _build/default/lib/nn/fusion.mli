(** NN-level operator fusion and cleanup (paper Table 2, row NN).

    BatchNorm folding happens at import; what remains profitable here is
    dead-code elimination (folding leaves orphaned producers behind) and
    collapsing chains of shape-only operators (Flatten/Reshape compose to
    a single reshape, and disappear entirely when the element order is
    unchanged end to end — the VECTOR level flattens everything anyway). *)

val dce : Ace_ir.Irfunc.t -> Ace_ir.Irfunc.t
(** Drop nodes unreachable from the returns. *)

val collapse_shape_ops : Ace_ir.Irfunc.t -> Ace_ir.Irfunc.t
(** Rewrite Flatten/Reshape-of-Flatten/Reshape to one node. *)

val pass : Ace_ir.Pass.t list
(** The NN fusion pipeline in canonical order. *)
