(** ONNX-subset graph -> NN IR.

    Performs shape inference while building (the NN IR is strongly typed,
    paper Section 4.1), maps every supported operator of Table 3, and
    folds BatchNormalization into the preceding convolution's weights —
    the standard inference-time transformation, which also removes an op
    CKKS could only approximate. Initializers become the IR function's
    constant pool. *)

exception Unsupported of string

val import : Ace_onnx.Model.graph -> Ace_ir.Irfunc.t
(** @raise Unsupported for graphs outside the supported fragment (e.g. a
    BatchNormalization that does not follow a Conv). *)
