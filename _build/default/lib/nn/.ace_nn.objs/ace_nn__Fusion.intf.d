lib/nn/fusion.mli: Ace_ir
