lib/nn/import.mli: Ace_ir Ace_onnx
