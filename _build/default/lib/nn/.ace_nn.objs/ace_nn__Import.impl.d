lib/nn/import.ml: Ace_ir Ace_onnx Array Hashtbl Irfunc Level List Op Printf String Types Verify
