lib/nn/fusion.ml: Ace_ir Array Irfunc Level List Op Pass
