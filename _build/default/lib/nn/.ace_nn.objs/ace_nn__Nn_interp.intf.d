lib/nn/nn_interp.mli: Ace_ir
