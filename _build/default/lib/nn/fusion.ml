open Ace_ir

let copy_meta (src : Irfunc.node) dst_f id =
  let m = Irfunc.node dst_f id in
  if m.Irfunc.origin = "" then m.Irfunc.origin <- src.Irfunc.origin

let dce f =
  let live = Array.make (Irfunc.num_nodes f) false in
  let rec mark i =
    if not live.(i) then begin
      live.(i) <- true;
      Array.iter mark (Irfunc.node f i).Irfunc.args
    end
  in
  List.iter mark (Irfunc.returns f);
  (* Parameters always survive (they define the calling convention). *)
  Array.iteri (fun i _ -> live.(i) <- true) (Irfunc.params f);
  let params = Array.to_list (Irfunc.params f) in
  Irfunc.map_rebuild f ~name:(Irfunc.name f) ~level:(Irfunc.level f) ~params
    ~emit:(fun dst lookup n ->
      match n.Irfunc.op with
      | Op.Param i -> Irfunc.param dst i
      | _ ->
        if live.(n.Irfunc.id) then begin
          let id = Irfunc.add dst n.Irfunc.op (Array.map lookup n.Irfunc.args) n.Irfunc.ty in
          copy_meta n dst id;
          id
        end
        else
          (* Dead: map to a sentinel that must never be referenced. The
             lookup of a dead node by a live one is impossible because
             liveness is closed over arguments. *)
          -1)

let collapse_shape_ops f =
  let is_shape_only (n : Irfunc.node) =
    match n.Irfunc.op with
    | Op.Nn Op.Flatten | Op.Nn (Op.Reshape _) -> true
    | _ -> false
  in
  let params = Array.to_list (Irfunc.params f) in
  Irfunc.map_rebuild f ~name:(Irfunc.name f) ~level:(Irfunc.level f) ~params
    ~emit:(fun dst lookup n ->
      match n.Irfunc.op with
      | Op.Param i -> Irfunc.param dst i
      | Op.Nn Op.Flatten | Op.Nn (Op.Reshape _) ->
        let src = Irfunc.node f n.Irfunc.args.(0) in
        let id =
          if is_shape_only src then
            (* Skip the intermediate: retype this node over its grandparent. *)
            Irfunc.add dst n.Irfunc.op [| lookup src.Irfunc.args.(0) |] n.Irfunc.ty
          else Irfunc.add dst n.Irfunc.op (Array.map lookup n.Irfunc.args) n.Irfunc.ty
        in
        copy_meta n dst id;
        id
      | _ ->
        let id = Irfunc.add dst n.Irfunc.op (Array.map lookup n.Irfunc.args) n.Irfunc.ty in
        copy_meta n dst id;
        id)

let pass =
  [
    Pass.make ~name:"nn-collapse-shape-ops" ~level:Level.Nn collapse_shape_ops;
    Pass.make ~name:"nn-dce" ~level:Level.Nn dce;
  ]
