(** Reference (cleartext) interpreter for the NN IR.

    This is both the "unencrypted" side of the paper's Table 11 accuracy
    experiment and the ground truth every lowering is validated against
    (the paper's NN-level instrumentation, Section 5). Semantics follow
    the ONNX operator definitions: convolutions use zero padding, pools
    average uniformly, tensors are row-major CHW. *)

val run : Ace_ir.Irfunc.t -> float array list -> float array list
(** [run f inputs] evaluates an NN-level function. Input order matches the
    function parameters; outputs match the returns. *)

val run1 : Ace_ir.Irfunc.t -> float array -> float array
(** Single-input single-output convenience. *)

val conv2d :
  x:float array ->
  w:float array ->
  b:float array ->
  in_dims:int array ->
  attrs:Ace_ir.Op.conv_attrs ->
  float array
(** Exposed for direct testing of the reference semantics. *)
