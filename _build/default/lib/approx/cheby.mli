(** Chebyshev interpolation on an interval.

    Provides near-minimax polynomial approximations of smooth functions.
    Used directly by the bootstrap's homomorphic sine evaluation and as the
    starting point of the Remez exchange. *)

val nodes : degree:int -> lo:float -> hi:float -> float array
(** The [degree+1] Chebyshev points of the interval. *)

val interpolate : (float -> float) -> degree:int -> lo:float -> hi:float -> Poly.t
(** Monomial-basis polynomial through the Chebyshev points. *)

val coefficients : (float -> float) -> degree:int -> lo:float -> hi:float -> float array
(** Chebyshev-basis coefficients [c_k] with
    [f(x) ~ sum c_k T_k (affine x)]; entry 0 already halved. *)

val eval_clenshaw : float array -> lo:float -> hi:float -> float -> float
(** Numerically stable evaluation of a Chebyshev series. *)
