type t = { stages : Poly.t list; eps : float; err : float }

let stage_depth p =
  let d = Poly.degree p in
  int_of_float (ceil (Float.log2 (float_of_int (d + 1))))

let depth t = List.fold_left (fun acc p -> acc + stage_depth p) 0 t.stages

let sign t x = List.fold_left (fun v p -> Poly.eval p v) x t.stages
let relu t x = 0.5 *. x *. (1.0 +. sign t x)

let make_remez ~eps ~target_err =
  if eps <= 0.0 || eps >= 1.0 then invalid_arg "Sign_approx.make_remez: eps";
  (* Each stage is the degree-7 odd minimax approximation of the constant 1
     on the current uncertainty interval [lo, hi]; its sup error becomes
     the next interval's half-width. Composition squeezes the interval
     super-linearly (Lee et al. [36]). *)
  let rec build stages lo hi =
    if List.length stages > 32 then failwith "Sign_approx: did not converge";
    let p, err = Remez.minimax_odd (fun _ -> 1.0) ~half_degree:3 ~lo ~hi in
    let stages = p :: stages in
    if err <= target_err then (List.rev stages, err)
    else build stages (1.0 -. err) (1.0 +. err)
  in
  let stages, err = build [] eps 1.0 in
  { stages; eps; err }

let cache : (int, t) Hashtbl.t = Hashtbl.create 8

let make ~alpha =
  if alpha < 1 || alpha > 12 then invalid_arg "Sign_approx.make: alpha out of range";
  match Hashtbl.find_opt cache alpha with
  | Some t -> t
  | None ->
    let eps = Float.pow 2.0 (float_of_int (-alpha)) in
    let t = make_remez ~eps ~target_err:eps in
    Hashtbl.add cache alpha t;
    t
