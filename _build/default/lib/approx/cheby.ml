let nodes ~degree ~lo ~hi =
  let n = degree + 1 in
  Array.init n (fun i ->
      let theta = Float.pi *. (float_of_int i +. 0.5) /. float_of_int n in
      let t = cos theta in
      (0.5 *. (lo +. hi)) +. (0.5 *. (hi -. lo) *. t))

let coefficients f ~degree ~lo ~hi =
  let n = degree + 1 in
  let vals =
    Array.init n (fun i ->
        let theta = Float.pi *. (float_of_int i +. 0.5) /. float_of_int n in
        f ((0.5 *. (lo +. hi)) +. (0.5 *. (hi -. lo) *. cos theta)))
  in
  Array.init n (fun k ->
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        let theta = Float.pi *. float_of_int k *. (float_of_int i +. 0.5) /. float_of_int n in
        acc := !acc +. (vals.(i) *. cos theta)
      done;
      let c = 2.0 *. !acc /. float_of_int n in
      if k = 0 then c /. 2.0 else c)

let eval_clenshaw c ~lo ~hi x =
  let t = ((2.0 *. x) -. lo -. hi) /. (hi -. lo) in
  let b1 = ref 0.0 and b2 = ref 0.0 in
  for k = Array.length c - 1 downto 1 do
    let b = (2.0 *. t *. !b1) -. !b2 +. c.(k) in
    b2 := !b1;
    b1 := b
  done;
  (t *. !b1) -. !b2 +. c.(0)

let interpolate f ~degree ~lo ~hi =
  let c = coefficients f ~degree ~lo ~hi in
  (* Convert the Chebyshev series to the monomial basis via the recurrence
     T_{k+1} = 2 t T_k - T_{k-1}, then substitute the affine map. *)
  let t_prev = ref Poly.one and t_cur = ref Poly.x in
  let affine =
    (* t = (2x - lo - hi)/(hi - lo) *)
    Poly.of_coeffs [| -.(lo +. hi) /. (hi -. lo); 2.0 /. (hi -. lo) |]
  in
  let acc = ref (Poly.scale c.(0) Poly.one) in
  for k = 1 to Array.length c - 1 do
    let tk = !t_cur in
    acc := Poly.add !acc (Poly.scale c.(k) tk);
    let next = Poly.sub (Poly.scale 2.0 (Poly.mul Poly.x tk)) !t_prev in
    t_prev := tk;
    t_cur := next
  done;
  Poly.compose !acc affine
