type t = float array (* normalised: last coefficient nonzero unless degree 0 *)

let normalise a =
  let n = ref (Array.length a) in
  while !n > 1 && a.(!n - 1) = 0.0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_coeffs a = if Array.length a = 0 then [| 0.0 |] else normalise (Array.copy a)
let coeffs t = Array.copy t
let degree t = Array.length t - 1
let zero = [| 0.0 |]
let one = [| 1.0 |]
let x = [| 0.0; 1.0 |]

let eval t v =
  let acc = ref 0.0 in
  for i = Array.length t - 1 downto 0 do
    acc := (!acc *. v) +. t.(i)
  done;
  !acc

let add a b =
  let n = max (Array.length a) (Array.length b) in
  normalise
    (Array.init n (fun i ->
         (if i < Array.length a then a.(i) else 0.0) +. if i < Array.length b then b.(i) else 0.0))

let sub a b =
  let n = max (Array.length a) (Array.length b) in
  normalise
    (Array.init n (fun i ->
         (if i < Array.length a then a.(i) else 0.0) -. if i < Array.length b then b.(i) else 0.0))

let scale s a = normalise (Array.map (fun c -> s *. c) a)

let mul a b =
  let out = Array.make (Array.length a + Array.length b - 1) 0.0 in
  Array.iteri (fun i ai -> Array.iteri (fun j bj -> out.(i + j) <- out.(i + j) +. (ai *. bj)) b) a;
  normalise out

let compose p q =
  let acc = ref zero in
  for i = Array.length p - 1 downto 0 do
    acc := add (mul !acc q) [| p.(i) |]
  done;
  !acc

let derivative t =
  if Array.length t = 1 then zero
  else normalise (Array.init (Array.length t - 1) (fun i -> float_of_int (i + 1) *. t.(i + 1)))

let is_odd t =
  let ok = ref true in
  Array.iteri (fun i c -> if i land 1 = 0 && abs_float c > 1e-12 then ok := false) t;
  !ok

let max_abs_error t f ~lo ~hi ~samples =
  let worst = ref 0.0 in
  for i = 0 to samples - 1 do
    let v = lo +. ((hi -. lo) *. float_of_int i /. float_of_int (samples - 1)) in
    worst := max !worst (abs_float (eval t v -. f v))
  done;
  !worst

let pp fmt t =
  Format.fprintf fmt "@[";
  Array.iteri
    (fun i c ->
      if c <> 0.0 || Array.length t = 1 then
        Format.fprintf fmt "%s%.6g*x^%d" (if i > 0 then " + " else "") c i)
    t;
  Format.fprintf fmt "@]"
