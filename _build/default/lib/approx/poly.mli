(** Dense univariate polynomials over floats (monomial basis).

    Coefficient index = degree; the representation is normalised (no
    trailing zeros beyond degree 0). Used by the nonlinear-approximation
    machinery of the SIHE IR and by the bootstrap's modular-reduction
    approximation. *)

type t

val of_coeffs : float array -> t
(** [of_coeffs [|c0; c1; ...|]] is [c0 + c1 x + ...]. *)

val coeffs : t -> float array
val degree : t -> int
val zero : t
val one : t
val x : t

val eval : t -> float -> float
(** Horner evaluation. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
val compose : t -> t -> t
(** [compose p q] is [p (q x)]. *)

val derivative : t -> t

val is_odd : t -> bool
(** True when all even-degree coefficients vanish (within 1e-12); odd
    polynomials preserve sign symmetry, which the sign-composition relies
    on. *)

val max_abs_error : t -> (float -> float) -> lo:float -> hi:float -> samples:int -> float
(** Dense-grid sup-norm distance to a reference function. *)

val pp : Format.formatter -> t -> unit
