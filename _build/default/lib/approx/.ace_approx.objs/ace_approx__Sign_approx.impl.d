lib/approx/sign_approx.ml: Float Hashtbl List Poly Remez
