lib/approx/sign_approx.mli: Poly
