lib/approx/remez.mli: Poly
