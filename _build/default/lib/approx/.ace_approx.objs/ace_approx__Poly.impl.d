lib/approx/poly.ml: Array Format
