lib/approx/cheby.ml: Array Float Poly
