lib/approx/remez.ml: Array Float List Poly
