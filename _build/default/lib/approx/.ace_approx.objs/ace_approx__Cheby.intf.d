lib/approx/cheby.mli: Poly
