lib/approx/poly.mli: Format
