(** Composite minimax approximation of the sign function (Lee, Lee, No &
    Kim, "Minimax Approximation of Sign Function by Composite Polynomial
    for Homomorphic Comparison", IEEE TDSC 2021 — reference [36] of the
    paper).

    A single minimax polynomial needs enormous degree to resolve sign near
    zero; composing low-degree odd polynomials reaches the same precision
    with multiplicative depth logarithmic in 1/epsilon. ANT-ACE uses this
    to lower ReLU in the SIHE IR: relu(x) = 0.5 * x * (1 + sign(x)). *)

type t = {
  stages : Poly.t list; (** applied left to right *)
  eps : float; (** inputs with [eps <= |x| <= 1] are resolved *)
  err : float; (** |composite(x) - sign(x)| on the resolved region *)
}

val depth : t -> int
(** Total multiplicative depth of evaluating all stages (sum over stages of
    ceil(log2(degree+1)) as evaluated by a power-basis scheme). *)

val sign : t -> float -> float
(** Evaluate the composition in cleartext. *)

val relu : t -> float -> float
(** [0.5 * x * (1 + sign x)], the cleartext model of the lowered ReLU. *)

val make : alpha:int -> t
(** Precision-targeted construction: resolves inputs with
    [|x| >= 2^-alpha] to within [2^-alpha]. Stage polynomials are the
    published f/g families (degree 7); the stage count follows the paper's
    composition rule. Supported alpha: 1..12. *)

val make_remez : eps:float -> target_err:float -> t
(** Fully computed alternative: build each stage with {!Remez.minimax_odd}
    on the current uncertainty interval until the target error is reached.
    Demonstrates the compiler's ability to synthesise approximations
    rather than rely on tables. *)
