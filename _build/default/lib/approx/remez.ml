(* Dense linear solver (partial pivoting); systems here are tiny (degree+2
   unknowns), so O(n^3) is irrelevant. *)
let solve a b =
  let n = Array.length b in
  let m = Array.map Array.copy a and v = Array.copy b in
  for col = 0 to n - 1 do
    let piv = ref col in
    for r = col + 1 to n - 1 do
      if abs_float m.(r).(col) > abs_float m.(!piv).(col) then piv := r
    done;
    if abs_float m.(!piv).(col) < 1e-300 then failwith "Remez.solve: singular system";
    if !piv <> col then begin
      let t = m.(col) in
      m.(col) <- m.(!piv);
      m.(!piv) <- t;
      let t = v.(col) in
      v.(col) <- v.(!piv);
      v.(!piv) <- t
    end;
    for r = col + 1 to n - 1 do
      let f = m.(r).(col) /. m.(col).(col) in
      for c = col to n - 1 do
        m.(r).(c) <- m.(r).(c) -. (f *. m.(col).(c))
      done;
      v.(r) <- v.(r) -. (f *. v.(col))
    done
  done;
  let x = Array.make n 0.0 in
  for r = n - 1 downto 0 do
    let s = ref v.(r) in
    for c = r + 1 to n - 1 do
      s := !s -. (m.(r).(c) *. x.(c))
    done;
    x.(r) <- !s /. m.(r).(r)
  done;
  x

(* One exchange framework parameterised by the basis. [basis j x] is the
   j-th basis function; [nb] the basis size; reference set has nb+1 points. *)
let exchange ~iterations ~grid f ~lo ~hi ~basis ~nb =
  let refs =
    ref
      (Array.init (nb + 1) (fun i ->
           let theta = Float.pi *. float_of_int i /. float_of_int nb in
           (0.5 *. (lo +. hi)) -. (0.5 *. (hi -. lo) *. cos theta)))
  in
  let coeffs = ref (Array.make nb 0.0) in
  let err_at c x =
    let p = ref 0.0 in
    for j = 0 to nb - 1 do
      p := !p +. (c.(j) *. basis j x)
    done;
    !p -. f x
  in
  for _ = 1 to iterations do
    (* Solve for equioscillation on the current reference. *)
    let a =
      Array.mapi
        (fun i x ->
          Array.init (nb + 1) (fun j ->
              if j < nb then basis j x else if i land 1 = 0 then 1.0 else -1.0))
        !refs
    in
    let b = Array.map f !refs in
    let sol = solve a b in
    coeffs := Array.sub sol 0 nb;
    (* Multi-point exchange: take the largest-|error| point of each
       constant-sign run of the error on a dense grid; such points
       alternate in sign by construction. *)
    let c = !coeffs in
    let xs = Array.init grid (fun g -> lo +. ((hi -. lo) *. float_of_int g /. float_of_int (grid - 1))) in
    let es = Array.map (err_at c) xs in
    let candidates = ref [] in
    let run_best = ref 0 and run_sign = ref 0 in
    let flush () = if !run_sign <> 0 then candidates := xs.(!run_best) :: !candidates in
    Array.iteri
      (fun i e ->
        let s = compare e 0.0 in
        if s = 0 then ()
        else if s = !run_sign then begin
          if abs_float e > abs_float es.(!run_best) then run_best := i
        end
        else begin
          flush ();
          run_sign := s;
          run_best := i
        end)
      es;
    flush ();
    let cands = Array.of_list (List.rev !candidates) in
    if Array.length cands >= nb + 1 then begin
      (* Trim to nb+1 consecutive candidates, dropping the weaker end. *)
      let start = ref 0 and len = ref (Array.length cands) in
      while !len > nb + 1 do
        let first = abs_float (err_at c cands.(!start)) in
        let last = abs_float (err_at c cands.(!start + !len - 1)) in
        if first < last then incr start;
        decr len
      done;
      refs := Array.sub cands !start (nb + 1)
    end
  done;
  let c = !coeffs in
  let sup = ref 0.0 in
  for g = 0 to grid - 1 do
    let x = lo +. ((hi -. lo) *. float_of_int g /. float_of_int (grid - 1)) in
    sup := max !sup (abs_float (err_at c x))
  done;
  (c, !sup)

let minimax ?(iterations = 25) ?(grid = 4096) f ~degree ~lo ~hi =
  let nb = degree + 1 in
  let basis j x = Float.pow x (float_of_int j) in
  let c, sup = exchange ~iterations ~grid f ~lo ~hi ~basis ~nb in
  (Poly.of_coeffs c, sup)

let minimax_odd ?(iterations = 25) ?(grid = 4096) f ~half_degree ~lo ~hi =
  if lo <= 0.0 then invalid_arg "Remez.minimax_odd: interval must be positive";
  let nb = half_degree + 1 in
  let basis j x = Float.pow x (float_of_int ((2 * j) + 1)) in
  let c, sup = exchange ~iterations ~grid f ~lo ~hi ~basis ~nb in
  let full = Array.make ((2 * half_degree) + 2) 0.0 in
  Array.iteri (fun j v -> full.((2 * j) + 1) <- v) c;
  (Poly.of_coeffs full, sup)
