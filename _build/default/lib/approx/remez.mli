(** Remez exchange algorithm: true minimax polynomial approximation of a
    continuous function on an interval.

    The SIHE IR's nonlinear-function approximation (paper Section 4.3,
    citing Lee et al.'s minimax composition) needs genuinely minimax
    building blocks; Chebyshev interpolation seeds the reference set and
    the exchange iterates to the equioscillating optimum. *)

val minimax :
  ?iterations:int ->
  ?grid:int ->
  (float -> float) ->
  degree:int ->
  lo:float ->
  hi:float ->
  Poly.t * float
(** [minimax f ~degree ~lo ~hi] returns the best degree-[degree]
    approximation and its sup-norm error. Defaults: 25 iterations, a
    4096-point search grid. *)

val minimax_odd :
  ?iterations:int ->
  ?grid:int ->
  (float -> float) ->
  half_degree:int ->
  lo:float ->
  hi:float ->
  Poly.t * float
(** Minimax over odd polynomials [sum a_k x^(2k+1)] on [\[lo, hi\]] with
    [0 < lo < hi], for odd symmetric targets such as sign. The returned
    polynomial has degree [2*half_degree + 1]. *)
