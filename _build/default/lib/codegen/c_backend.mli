(** C source emission (paper Section 3.4).

    Renders a POLY-IR function as a C translation unit over the ACEfhe
    runtime API, mirroring the paper's generated code: weights and biases
    are referenced through an external constant table rather than inlined
    (their Section 3.4 measurement: externalising ResNet-20 weights shrank
    the generated file from 621 MB to 384 KB), RNS loops become [for]
    loops over [num_q], and fused operators map to the fused ACEfhe entry
    points. The emitted source is a faithful rendering, golden-tested; the
    sealed container has no C toolchain, so execution goes through
    {!Vm} (DESIGN.md). *)

val emit : ?extern_weights:bool -> Ace_ir.Irfunc.t -> Ace_poly_ir.Poly_ir.func -> string
(** [emit ckks_func poly_func]: the CKKS function supplies the constant
    pool; the POLY function the code. *)

val emit_weights_file : Ace_ir.Irfunc.t -> string
(** The external weight blob as a C array initialiser (what the paper
    writes next to the program). *)

val line_count : string -> int
