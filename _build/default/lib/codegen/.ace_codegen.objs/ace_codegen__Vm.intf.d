lib/codegen/vm.mli: Ace_fhe Ace_ir
