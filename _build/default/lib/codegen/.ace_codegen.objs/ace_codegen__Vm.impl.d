lib/codegen/vm.ml: Ace_ckks_ir Ace_fhe Ace_ir Array Irfunc Level List Op Printf String Unix
