lib/codegen/c_backend.ml: Ace_ir Ace_poly_ir Array Buffer Irfunc List Printf String
