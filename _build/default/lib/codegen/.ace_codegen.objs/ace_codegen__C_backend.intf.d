lib/codegen/c_backend.mli: Ace_ir Ace_poly_ir
