(** POLY-level operator fusion (paper Section 4.5).

    Two rewrites backed by fused ACEfhe entry points:

    - [hw_modmul] whose result immediately feeds an [hw_modadd] becomes a
      single [hw_modmuladd];
    - a [decomp] call immediately followed by [mod_up] of its result
      becomes [decomp_modup], avoiding one whole-polynomial round trip. *)

val fuse : Poly_ir.func -> Poly_ir.func

val count_fused : Poly_ir.func -> int
(** Number of fused operators present ([hw_modmuladd] + [decomp_modup]). *)
