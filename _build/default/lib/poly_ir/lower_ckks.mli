(** CKKS IR -> POLY IR lowering.

    Each CKKS operator expands into its RNS realisation: additions become
    per-limb loops of [hw_modadd] over both ciphertext components;
    multiplications become NTT-domain pointwise loops plus the
    relinearisation sequence [decomp -> mod_up -> inner products ->
    mod_down]; rotations become [automorphism] plus the same key-switch
    skeleton; rescale and bootstrap stay whole-polynomial calls. The
    result is what the C backend prints and what the POLY-level fusion
    passes optimise. *)

val lower : Ace_ir.Irfunc.t -> Poly_ir.func
