lib/poly_ir/poly_ir.ml: Format List Printf String
