lib/poly_ir/op_fusion.ml: List Poly_ir
