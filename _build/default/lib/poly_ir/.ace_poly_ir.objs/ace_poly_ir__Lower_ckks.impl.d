lib/poly_ir/lower_ckks.ml: Ace_ir Array Float Irfunc Level List Op Poly_ir Printf Types
