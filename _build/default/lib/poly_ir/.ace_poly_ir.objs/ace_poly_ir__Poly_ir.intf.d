lib/poly_ir/poly_ir.mli: Format
