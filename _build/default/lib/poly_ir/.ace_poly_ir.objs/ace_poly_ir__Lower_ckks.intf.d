lib/poly_ir/lower_ckks.mli: Ace_ir Poly_ir
