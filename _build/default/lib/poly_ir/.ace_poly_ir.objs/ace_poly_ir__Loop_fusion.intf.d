lib/poly_ir/loop_fusion.mli: Poly_ir
