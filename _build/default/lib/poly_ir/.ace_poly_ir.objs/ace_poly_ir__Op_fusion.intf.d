lib/poly_ir/op_fusion.mli: Poly_ir
