lib/poly_ir/loop_fusion.ml: List Poly_ir
