open Poly_ir

(* RNS trip counts are compile-time constants (paper Section 4.5); two
   loops fuse when their resolved counts agree, regardless of which
   polynomial the bound was spelled over. *)
let bounds_equal a b =
  match (a, b) with
  | Num_q (_, x), Num_q (_, y) -> x = y
  | Const_bound x, Const_bound y -> x = y
  | Num_q (_, x), Const_bound y | Const_bound x, Num_q (_, y) -> x = y

let elementwise body =
  List.for_all (function Hw _ -> true | For _ | Call _ | Comment _ -> false) body

(* Trip counts are equal whenever the bound variables denote polynomials at
   the same level; syntactic equality of the bound is the conservative
   check, but bounds over limbs of ciphertexts produced inside the same
   fused region are also equal by construction. We approximate: identical
   bound, or both bounds are limb-0 components at the same statement
   distance — kept simple and conservative (identical only). *)
let rec fuse_stmts = function
  | For ({ idx = i1; bound = b1; body = body1 } as _f1) :: For { idx = i2; bound = b2; body = body2 } :: rest
    when bounds_equal b1 b2 && i1 = i2 && elementwise body1 && elementwise body2 ->
    fuse_stmts (For { idx = i1; bound = b1; body = body1 @ body2 } :: rest)
  | For f :: rest -> For { f with body = fuse_stmts f.body } :: fuse_stmts rest
  | s :: rest -> s :: fuse_stmts rest
  | [] -> []

let fuse f = { f with body = fuse_stmts f.body }

let fused_loops before after = loop_count before - loop_count after
