(** POLY-level loop fusion (paper Section 4.5).

    RNS loops have compile-time-constant trip counts; adjacent loops whose
    bounds are syntactically equal and whose bodies are element-wise [hw_]
    operations can be fused, eliminating intermediate polynomial traffic
    (the paper's poly3 -> tmp example). The fusion is conservative: only
    directly adjacent loops fuse, and only when the second loop's reads of
    the first loop's writes are element-aligned — which element-wise hw
    ops guarantee. *)

val fuse : Poly_ir.func -> Poly_ir.func

val fused_loops : Poly_ir.func -> Poly_ir.func -> int
(** How many loops disappeared between the two versions. *)
