open Poly_ir

let rec fuse_body = function
  (* modmul t, ...; modadd dst, (t, u) -> modmuladd dst (a, b, u) *)
  | Hw { h_dst = t; h_op = Hw_modmul; h_args = [ a; b ] }
    :: Hw { h_dst; h_op = Hw_modadd; h_args = [ x; y ] }
    :: rest
    when (x = t || y = t) && t <> h_dst ->
    let other = if x = t then y else x in
    Hw { h_dst; h_op = Hw_modmuladd; h_args = [ a; b; other ] } :: fuse_body rest
  | Call { c_dst = d1; c_op = P_decomp; c_args } :: Call { c_dst = d2; c_op = P_mod_up; c_args = [ src ] } :: rest
    when src = d1 ->
    Call { c_dst = d2; c_op = P_decomp_modup; c_args } :: fuse_body rest
  | For f :: rest -> For { f with body = fuse_body f.body } :: fuse_body rest
  | s :: rest -> s :: fuse_body rest
  | [] -> []

let fuse f = { f with body = fuse_body f.body }

let count_fused f =
  let rec go acc = function
    | For { body; _ } -> List.fold_left go acc body
    | Hw { h_op = Hw_modmuladd; _ } -> acc + 1
    | Call { c_op = P_decomp_modup; _ } -> acc + 1
    | Hw _ | Call _ | Comment _ -> acc
  in
  List.fold_left go 0 f.body
