(* Little-endian limbs in base 2^26; normalised (no high zero limbs). *)

let base_bits = 26
let base = 1 lsl base_bits
let base_mask = base - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]

let normalise (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignum.of_int: negative";
  let rec limbs n acc = if n = 0 then acc else limbs (n lsr base_bits) ((n land base_mask) :: acc) in
  normalise (Array.of_list (List.rev (limbs n [])))

let to_int_opt (a : t) =
  (* max_int is 2^62 - 1 = three limbs with a 10-bit top limb. *)
  let la = Array.length a in
  let fits =
    la < 3 || (la = 3 && a.(2) < 1 lsl (62 - (2 * base_bits)))
  in
  if fits then begin
    let v = ref 0 in
    for i = la - 1 downto 0 do
      v := (!v lsl base_bits) lor a.(i)
    done;
    Some !v
  end
  else None

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  normalise r

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Bignum.sub: underflow";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalise r

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        (* a.(i)*b.(j) < 2^52; + r < 2^26; + carry < 2^26: fits in 63 bits. *)
        let s = r.(i + j) + (a.(i) * b.(j)) + !carry in
        r.(i + j) <- s land base_mask;
        carry := s lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land base_mask;
        carry := s lsr base_bits;
        incr k
      done
    done;
    normalise r
  end

let mul_int (a : t) k =
  if k < 0 then invalid_arg "Bignum.mul_int: negative";
  if k = 0 || Array.length a = 0 then zero
  else if k >= 1 lsl 31 then mul a (of_int k)
  else begin
    let la = Array.length a in
    let r = Array.make (la + 2) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let s = (a.(i) * k) + !carry in
      r.(i) <- s land base_mask;
      carry := s lsr base_bits
    done;
    let k' = ref la in
    while !carry <> 0 do
      r.(!k') <- !carry land base_mask;
      carry := !carry lsr base_bits;
      incr k'
    done;
    normalise r
  end

let add_int a k = add a (of_int k)

let divmod_int (a : t) k =
  if k <= 0 then invalid_arg "Bignum.divmod_int: non-positive divisor";
  if k >= 1 lsl 31 then invalid_arg "Bignum.divmod_int: divisor too large";
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    (* rem < k < 2^31 so (rem << 26) + limb < 2^57: safe. *)
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / k;
    rem := cur mod k
  done;
  (normalise q, !rem)

let mod_int a k = snd (divmod_int a k)

let rem a m =
  if Array.length m = 0 then invalid_arg "Bignum.rem: zero modulus";
  let r = ref a in
  (* Scale m by powers of two so the loop is logarithmic in a/m. *)
  let rec shrink () =
    if compare !r m >= 0 then begin
      let s = ref m in
      while compare (add !s !s) !r <= 0 do
        s := add !s !s
      done;
      r := sub !r !s;
      shrink ()
    end
  in
  shrink ();
  !r

let to_float (a : t) =
  let v = ref 0.0 in
  for i = Array.length a - 1 downto 0 do
    v := (!v *. float_of_int base) +. float_of_int a.(i)
  done;
  !v

let to_string (a : t) =
  if Array.length a = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go x =
      let q, r = divmod_int x 1_000_000_000 in
      if Array.length q = 0 then Buffer.add_string buf (string_of_int r)
      else begin
        go q;
        Buffer.add_string buf (Printf.sprintf "%09d" r)
      end
    in
    go a;
    Buffer.contents buf
  end

let pp fmt a = Format.pp_print_string fmt (to_string a)

let centered_to_float x ~modulus =
  let half = fst (divmod_int modulus 2) in
  if compare x half > 0 then -.to_float (sub modulus x) else to_float x
