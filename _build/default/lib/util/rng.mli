(** Deterministic pseudo-random number generation.

    All randomness in the system flows through this module so that key
    generation, encryption and synthetic data are reproducible from a seed.
    The generator is splitmix64, which has a 64-bit state, passes BigCrush,
    and is trivially seedable. It is {e not} a CSPRNG; this repository is a
    systems reproduction, not a deployment-grade cryptographic library, and
    the substitution is recorded in DESIGN.md. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from a seed. Equal seeds give
    equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val gaussian : t -> float -> float
(** [gaussian t sigma] samples a centered normal of standard deviation
    [sigma] (Box–Muller). *)

val ternary : t -> int
(** Uniform in [{-1, 0, 1}]; the CKKS secret-key distribution. *)

val centered_binomial : t -> int -> int
(** [centered_binomial t k] samples the centered binomial distribution of
    parameter [k] (sum of [k] coin differences), a common RLWE error
    distribution. *)
