(** Arbitrary-precision unsigned naturals.

    The RNS-CKKS runtime keeps ciphertext polynomials as residues modulo a
    chain of word-sized primes, so almost all arithmetic is word arithmetic.
    The one place a multi-precision integer is unavoidable is decoding: the
    CRT recombination of residues into a coefficient modulo
    [Q = q0 * q1 * ... * q_{l}], followed by a centered lift to a float.
    This module supplies exactly that capability.

    Representation: little-endian limb array in base 2^26, normalised (no
    trailing zero limbs, zero is the empty array). Base 2^26 keeps every
    intermediate product-plus-carry within OCaml's 63-bit native int. *)

type t

val zero : t
val one : t

val of_int : int -> t
(** [of_int n] for [n >= 0]. *)

val to_int_opt : t -> int option
(** Total inverse of [of_int] when the value fits in a native int. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] requires [a >= b]. @raise Invalid_argument otherwise. *)

val mul : t -> t -> t
val mul_int : t -> int -> t
(** [mul_int a k] for [0 <= k < 2^31]. *)

val add_int : t -> int -> t

val divmod_int : t -> int -> t * int
(** [divmod_int a k] for [0 < k < 2^31] is the quotient and remainder. *)

val mod_int : t -> int -> int

val rem : t -> t -> t
(** [rem a m]: remainder of [a] modulo [m], by repeated scaled subtraction;
    intended for [a < c * m] with small [c] (CRT sums), not general division. *)

val to_float : t -> float
val to_string : t -> string
(** Decimal rendering. *)

val pp : Format.formatter -> t -> unit

val centered_to_float : t -> modulus:t -> float
(** [centered_to_float x ~modulus:m] lifts the residue [x mod m] to the
    centered representative in [(-m/2, m/2]] and converts to float. This is
    the decode-side lift of CKKS. *)
