type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)
let bits64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = bits64 t }

let int t bound =
  assert (bound > 0);
  (* Rejection sampling over the top 62 bits keeps the result unbiased. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec loop () =
    let r = Int64.to_int (bits64 t) land mask in
    let v = r mod bound in
    if r - v > mask - bound + 1 then loop () else v
  in
  loop ()

let float t x =
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  let u = float_of_int r /. 9007199254740992.0 (* 2^53 *) in
  u *. x

let gaussian t sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u = 0.0 then nonzero () else u
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let ternary t = int t 3 - 1

let centered_binomial t k =
  let acc = ref 0 in
  for _ = 1 to k do
    acc := !acc + int t 2 - int t 2
  done;
  !acc
