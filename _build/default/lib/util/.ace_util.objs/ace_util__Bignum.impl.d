lib/util/bignum.ml: Array Buffer Format List Printf Stdlib
