lib/util/rng.mli:
