lib/util/bignum.mli: Format
