module Layout = Ace_vector.Layout

type report = {
  nn_output : float array;
  vector_output : float array;
  encrypted_output : float array;
  layout_error : float;
  crypto_error : float;
}

let max_err a b =
  let e = ref 0.0 in
  Array.iteri (fun i x -> e := max !e (abs_float (x -. b.(i)))) a;
  !e

let run (c : Pipeline.compiled) keys ~seed input =
  let nn_output = Ace_nn.Nn_interp.run1 c.Pipeline.nn input in
  let packed = Layout.vector_of_tensor c.Pipeline.input_layout input in
  let out_layout = List.hd c.Pipeline.output_layouts in
  let vector_output =
    Layout.tensor_of_vector out_layout (Ace_vector.Vec_interp.run1 c.Pipeline.vec packed)
  in
  let encrypted_output = Pipeline.infer_encrypted c keys ~seed input in
  {
    nn_output;
    vector_output;
    encrypted_output;
    layout_error = max_err nn_output vector_output;
    crypto_error = max_err vector_output encrypted_output;
  }

let pp fmt r =
  Format.fprintf fmt
    "@[<v>instrumented run:@,  NN vs VECTOR (layout):      %.3e@,  VECTOR vs encrypted (noise): %.3e@]"
    r.layout_error r.crypto_error
