(** Instrumented execution (paper Section 5: "instrumentation capabilities
    at both the NN and VECTOR IR levels, enabling support for machine
    learning inference in both unencrypted and encrypted modes").

    Runs the same input through the NN reference interpreter, the VECTOR
    cleartext interpreter and the encrypted VM, then reports where the
    three executions diverge — separating layout/mask bugs (NN vs VECTOR)
    from approximation/noise effects (VECTOR vs encrypted). *)

type report = {
  nn_output : float array;
  vector_output : float array; (** unpacked to the NN tensor *)
  encrypted_output : float array;
  layout_error : float; (** max |NN - VECTOR|: lowering correctness *)
  crypto_error : float; (** max |VECTOR - encrypted|: approximation + noise *)
}

val run :
  Pipeline.compiled -> Ace_fhe.Keys.t -> seed:int -> float array -> report

val pp : Format.formatter -> report -> unit
