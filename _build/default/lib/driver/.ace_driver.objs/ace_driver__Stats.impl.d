lib/driver/stats.ml: Ace_ckks_ir Ace_codegen Ace_ir Ace_poly_ir Array Format Irfunc Level List Op Pipeline Printer
