lib/driver/pipeline.mli: Ace_ckks_ir Ace_fhe Ace_ir Ace_poly_ir Ace_vector
