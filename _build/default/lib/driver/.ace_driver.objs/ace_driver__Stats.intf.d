lib/driver/stats.mli: Ace_ir Format Pipeline
