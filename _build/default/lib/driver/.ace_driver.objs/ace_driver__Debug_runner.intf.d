lib/driver/debug_runner.mli: Ace_fhe Format Pipeline
