lib/driver/pipeline.ml: Ace_ckks_ir Ace_codegen Ace_fhe Ace_ir Ace_nn Ace_poly_ir Ace_sihe Ace_util Ace_vector Array Irfunc Level List Types Unix Verify
