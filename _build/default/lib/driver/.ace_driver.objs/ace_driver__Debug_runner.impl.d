lib/driver/debug_runner.ml: Ace_nn Ace_vector Array Format List Pipeline
