(* ace-compile: command-line front door of the compiler (paper Figure 3).

     ace_compile MODEL.onnxt [-o out.c] [--weights out_weights.c]
                 [--strategy ace|expert|library] [--print-ir LEVEL]
                 [--stats] [--run N]

   Reads a textual ONNX-subset model, compiles it through the five IR
   levels, and writes the generated C (weights externalised, as in the
   paper's Section 3.4). [--print-ir] dumps one level's listing instead;
   [--run N] additionally executes N encrypted inferences on random inputs
   through the VM backend and reports the error against the cleartext
   reference. *)

module Pipeline = Ace_driver.Pipeline
module Stats = Ace_driver.Stats
open Cmdliner

let strategy_of_string = function
  | "ace" -> Ok Pipeline.ace
  | "expert" -> Ok Pipeline.expert
  | "library" -> Ok Pipeline.library_default
  | s -> Error (`Msg (Printf.sprintf "unknown strategy %S (ace | expert | library)" s))

let strategy_conv =
  Arg.conv ((fun s -> strategy_of_string s), fun fmt s -> Format.pp_print_string fmt s.Pipeline.strategy_name)

let level_conv =
  let parse = function
    | "nn" -> Ok `Nn
    | "vector" -> Ok `Vector
    | "sihe" -> Ok `Sihe
    | "ckks" -> Ok `Ckks
    | "poly" -> Ok `Poly
    | s -> Error (`Msg (Printf.sprintf "unknown level %S" s))
  in
  Arg.conv (parse, fun fmt _ -> Format.pp_print_string fmt "<level>")

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let run_main model output weights strategy print_ir stats run_n =
  let graph = Ace_onnx.Parser.parse_file model in
  let nn = Ace_nn.Import.import graph in
  let compiled = Pipeline.compile strategy nn in
  (match print_ir with
  | Some `Nn -> print_endline (Ace_ir.Printer.to_string compiled.Pipeline.nn)
  | Some `Vector -> print_endline (Ace_ir.Printer.to_string compiled.Pipeline.vec)
  | Some `Sihe -> print_endline (Ace_ir.Printer.to_string compiled.Pipeline.sihe)
  | Some `Ckks -> print_endline (Ace_ir.Printer.to_string compiled.Pipeline.ckks)
  | Some `Poly -> print_endline (Ace_poly_ir.Poly_ir.to_string compiled.Pipeline.poly)
  | None ->
    write_file output compiled.Pipeline.c_source;
    write_file weights (Ace_codegen.C_backend.emit_weights_file compiled.Pipeline.ckks);
    Printf.printf "wrote %s and %s\n" output weights);
  if stats then Format.printf "%a@." Stats.pp (Stats.of_compiled compiled);
  if run_n > 0 then begin
    let keys = Pipeline.make_keys compiled ~seed:1 in
    let rng = Ace_util.Rng.create 2 in
    let dims = Ace_ir.Types.tensor_elems (snd (Ace_ir.Irfunc.params nn).(0)) in
    for i = 1 to run_n do
      let x = Array.init dims (fun _ -> Ace_util.Rng.float rng 1.0 -. 0.5) in
      let expect = Ace_nn.Nn_interp.run1 nn x in
      let got = Pipeline.infer_encrypted compiled keys ~seed:(10 + i) x in
      let err = ref 0.0 in
      Array.iteri (fun j v -> err := max !err (abs_float (v -. expect.(j)))) got;
      Printf.printf "run %d: max |encrypted - cleartext| = %.6f\n%!" i !err
    done
  end;
  Ok ()

let cmd =
  let model =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"MODEL" ~doc:"Textual ONNX-subset model file.")
  in
  let output =
    Arg.(value & opt string "ace_out.c" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Generated C file.")
  in
  let weights =
    Arg.(value & opt string "ace_out_weights.c" & info [ "weights" ] ~docv:"FILE" ~doc:"External weight table.")
  in
  let strategy =
    Arg.(value & opt strategy_conv Pipeline.ace & info [ "strategy" ] ~docv:"S" ~doc:"ace | expert | library.")
  in
  let print_ir =
    Arg.(value & opt (some level_conv) None & info [ "print-ir" ] ~docv:"LEVEL" ~doc:"Dump nn|vector|sihe|ckks|poly instead of emitting C.")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print compile statistics.") in
  let run_n =
    Arg.(value & opt int 0 & info [ "run" ] ~docv:"N" ~doc:"Execute N encrypted inferences and report error.")
  in
  let term = Term.(term_result (const run_main $ model $ output $ weights $ strategy $ print_ir $ stats $ run_n)) in
  Cmd.v (Cmd.info "ace_compile" ~doc:"ANT-ACE reproduction: compile ONNX-subset models for encrypted inference") term

let () = exit (Cmd.eval cmd)
