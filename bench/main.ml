(* Benchmark harness: regenerates every quantitative table and figure of
   the paper's evaluation (Section 6) at the documented simulation scale.

     dune exec bench/main.exe                 -- compact sweep of everything
     dune exec bench/main.exe -- fig5         -- compile times + breakdown
     dune exec bench/main.exe -- fig6         -- ACE vs Expert inference
     dune exec bench/main.exe -- fig6-quick   -- two models only
     dune exec bench/main.exe -- fig7         -- memory / evaluation keys
     dune exec bench/main.exe -- table8       -- LoC breakdown of this repo
     dune exec bench/main.exe -- table10      -- selected security parameters
     dune exec bench/main.exe -- table11 -n K -- accuracy under encryption
     dune exec bench/main.exe -- micro        -- Bechamel micro-benchmarks
     dune exec bench/main.exe -- batch        -- slot-batching k-sweep + complex packing
     dune exec bench/main.exe -- serve        -- serving throughput vs concurrent clients

   Expected shapes (EXPERIMENTS.md records measured numbers):
     fig5  : seconds per model; VECTOR dominates the breakdown
     fig6  : ACE beats Expert overall, on Conv, and on ReLU; bootstrap is
             additionally compared per-operation (recryption-oracle
             substitution, DESIGN.md)
     fig7  : ACE cuts evaluation-key memory by >80%
     table10: identical parameter rows across models, security-driven N
     table11: encrypted inference preserves cleartext predictions *)

module Pipeline = Ace_driver.Pipeline
module Stats = Ace_driver.Stats
module Resnet = Ace_models.Resnet
module Dataset = Ace_models.Dataset
module Keygen_plan = Ace_ckks_ir.Keygen_plan
module Param_select = Ace_ckks_ir.Param_select
module Cost = Ace_fhe.Cost
module Telemetry = Ace_telemetry.Telemetry
module Rng = Ace_util.Rng
open Ace_ir

let models = Resnet.all_paper_models

let compile_cache : (string, Pipeline.compiled) Hashtbl.t = Hashtbl.create 16

let compiled strategy spec =
  let key = strategy.Pipeline.strategy_name ^ "/" ^ spec.Resnet.model_name in
  match Hashtbl.find_opt compile_cache key with
  | Some c -> c
  | None ->
    let c = Pipeline.compile strategy (Resnet.build_calibrated spec) in
    Hashtbl.add compile_cache key c;
    c

(* Keys are regenerated per use: an expert keyset for one model runs to
   gigabytes, so caching six of them would exhaust memory. *)
let keys_for strategy spec = Pipeline.make_keys (compiled strategy spec) ~seed:77

let hr () = print_endline (String.make 78 '-')

(* ---------- Figure 5: compile times with per-IR breakdown ---------- *)

let fig5 () =
  print_endline "[Figure 5] ANT-ACE compile times (seconds; breakdown per IR level)";
  hr ();
  Printf.printf "%-10s %8s | %6s %6s %6s %6s %6s %6s\n" "model" "total" "NN" "VECTOR" "SIHE"
    "CKKS" "POLY" "Others";
  List.iter
    (fun spec ->
      let t0 = Unix.gettimeofday () in
      let c = Pipeline.compile Pipeline.ace (Resnet.build_calibrated spec) in
      let total = Unix.gettimeofday () -. t0 in
      let level l = List.assoc l c.Pipeline.level_seconds in
      let pct s = 100.0 *. s /. total in
      Printf.printf "%-10s %7.2fs | %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n%!"
        spec.Resnet.model_name total (pct (level Level.Nn)) (pct (level Level.Vector))
        (pct (level Level.Sihe)) (pct (level Level.Ckks)) (pct (level Level.Poly))
        (pct c.Pipeline.other_seconds);
      Hashtbl.replace compile_cache ("ACE/" ^ spec.Resnet.model_name) c)
    models

(* ---------- Figure 6: per-image inference, ACE vs Expert ---------- *)

type phase_row = {
  total : float;
  conv : float;
  boot : float;
  relu : float;
  boots : int;
  avg_target : float;
}

(* Phase totals come from the telemetry snapshot (merged across domains),
   not per-run gettimeofday bookkeeping: the same numbers the --json
   artifact embeds. *)
let phase_total snap name =
  match Telemetry.find_stats snap ("phase." ^ name) with
  | Some s -> s.Telemetry.st_total
  | None -> 0.0

let run_one strategy spec image =
  let c = compiled strategy spec in
  let keys = keys_for strategy spec in
  Telemetry.reset_metrics ();
  let t0 = Unix.gettimeofday () in
  let _ = Pipeline.infer_encrypted c keys ~seed:55 image in
  let total = Unix.gettimeofday () -. t0 in
  let snap = Telemetry.snapshot () in
  let conv = phase_total snap "conv" +. phase_total snap "gemm" in
  let boot = phase_total snap "bootstrap" in
  let relu = phase_total snap "relu" in
  let boots = Cost.get_count Cost.Bootstrap in
  let targets =
    Irfunc.fold c.Pipeline.ckks ~init:[] ~f:(fun acc n ->
        match n.Irfunc.op with Op.C_bootstrap t -> t :: acc | _ -> acc)
  in
  let avg_target =
    if targets = [] then 0.0
    else float_of_int (List.fold_left ( + ) 0 targets) /. float_of_int (List.length targets)
  in
  { total; conv; boot; relu; boots; avg_target }

let fig6 ?(specs = models) () =
  print_endline
    "[Figure 6] Per-image encrypted inference (seconds): ACE / Expert";
  print_endline
    "  Bootstrap runs through the recryption oracle (DESIGN.md); its per-operation";
  print_endline "  cost scales with the target level, the compiler decision under test.";
  hr ();
  Printf.printf "%-10s | %15s %15s %15s %15s | %11s\n" "model" "Conv+Gemm" "Bootstrap" "ReLU"
    "Total" "boot lvl";
  let sums = ref (0.0, 0.0) in
  List.iter
    (fun spec ->
      let rng = Rng.create 1001 in
      let dims = 3 * spec.Resnet.image_size * spec.Resnet.image_size in
      let image = Array.init dims (fun _ -> Rng.float rng 1.0) in
      let a = run_one Pipeline.ace spec image in
      let e = run_one Pipeline.expert spec image in
      let pair x y = Printf.sprintf "%6.1f/%6.1f" x y in
      Printf.printf "%-10s | %15s %15s %15s %15s | %4.1f/%4.1f\n%!" spec.Resnet.model_name
        (pair a.conv e.conv) (pair a.boot e.boot) (pair a.relu e.relu) (pair a.total e.total)
        a.avg_target e.avg_target;
      Printf.printf "%-10s |   bootstraps %d/%d, per-bootstrap %.0f/%.0f ms\n%!" ""
        a.boots e.boots
        (1000.0 *. a.boot /. float_of_int (max 1 a.boots))
        (1000.0 *. e.boot /. float_of_int (max 1 e.boots));
      let sa, se = !sums in
      sums := (sa +. a.total, se +. e.total))
    specs;
  hr ();
  let sa, se = !sums in
  Printf.printf "Overall speedup ACE vs Expert: %.2fx (paper reports 2.24x)\n" (se /. sa)

(* ---------- Figure 7: memory, evaluation keys highlighted ---------- *)

let fig7 () =
  print_endline "[Figure 7] Memory (MB): ACE / Expert, with the CKKS-keys share";
  hr ();
  Printf.printf "%-10s | %8s %8s | %8s %8s | %6s %6s | %8s\n" "model" "keysA" "totalA" "keysE"
    "totalE" "#rotA" "#rotE" "key cut";
  List.iter
    (fun spec ->
      let mb x = float_of_int x /. 1048576.0 in
      let measure strategy =
        let c = compiled strategy spec in
        let keys = Keygen_plan.evaluation_key_bytes c.Pipeline.context c.Pipeline.key_plan in
        let n = Ace_fhe.Context.ring_degree c.Pipeline.context in
        let limbs = Ace_fhe.Context.max_level c.Pipeline.context + 1 in
        (* Working set: keys + a conv's live ciphertexts + cleartext
           weights/masks kept for on-demand encoding. *)
        let cts = 8 * Cost.ciphertext_bytes ~ring_degree:n ~limbs in
        let weights =
          8
          * List.fold_left
              (fun acc name -> acc + Array.length (Irfunc.const c.Pipeline.ckks name))
              0 (Irfunc.const_names c.Pipeline.ckks)
        in
        (keys, keys + cts + weights, Keygen_plan.key_count c.Pipeline.key_plan)
      in
      let ka, ta, ra = measure Pipeline.ace in
      let ke, te, re = measure Pipeline.expert in
      Printf.printf "%-10s | %7.1fM %7.1fM | %7.1fM %7.1fM | %6d %6d | %7.1f%%\n%!"
        spec.Resnet.model_name (mb ka) (mb ta) (mb ke) (mb te) ra re
        (100.0 *. (1.0 -. (float_of_int ka /. float_of_int ke))))
    models;
  hr ();
  print_endline "(paper: ACE cuts key memory by 84.8% on average via dataflow key pruning)"

(* ---------- Table 8: component LoC breakdown of this repository ---------- *)

let count_dir dir =
  let code = ref 0 and comments = ref 0 in
  let rec walk d =
    Array.iter
      (fun entry ->
        let path = Filename.concat d entry in
        if Sys.is_directory path then walk path
        else if Filename.check_suffix entry ".ml" || Filename.check_suffix entry ".mli" then begin
          let ic = open_in path in
          let in_comment = ref false in
          (try
             while true do
               let line = String.trim (input_line ic) in
               if line <> "" then begin
                 let opens = String.length line >= 2 && String.sub line 0 2 = "(*" in
                 let closes =
                   String.length line >= 2 && String.sub line (String.length line - 2) 2 = "*)"
                 in
                 if !in_comment || opens then incr comments else incr code;
                 if opens && not closes then in_comment := true;
                 if closes then in_comment := false
               end
             done
           with End_of_file -> close_in ic)
        end)
      (Sys.readdir d)
  in
  if Sys.file_exists dir then walk dir;
  (!code, !comments)

let table8 () =
  print_endline "[Table 8] Component breakdown of this reproduction (non-empty LoC)";
  hr ();
  Printf.printf "%-30s %8s %10s\n" "component" "code" "comments";
  let total_c = ref 0 and total_m = ref 0 in
  List.iter
    (fun (label, dir) ->
      let c, m = count_dir dir in
      total_c := !total_c + c;
      total_m := !total_m + m;
      Printf.printf "%-30s %8d %10d\n" label c m)
    [
      ("Infrastructure (ir)", "lib/ir");
      ("Infrastructure (util)", "lib/util");
      ("ONNX frontend", "lib/onnx");
      ("NN IR", "lib/nn");
      ("VECTOR IR", "lib/vector");
      ("SIHE IR", "lib/sihe");
      ("Approximation (Remez/sign)", "lib/approx");
      ("CKKS IR", "lib/ckks_ir");
      ("POLY IR", "lib/poly_ir");
      ("Code generation", "lib/codegen");
      ("Run-time library (ACEfhe)", "lib/fhe");
      ("RNS substrate", "lib/rns");
      ("Driver", "lib/driver");
      ("Model zoo / datasets", "lib/models");
      ("Expert baseline", "lib/expert");
    ];
  let tests_c, tests_m = count_dir "test" in
  let bench_c, bench_m = count_dir "bench" in
  let ex_c, ex_m = count_dir "examples" in
  Printf.printf "%-30s %8d %10d\n" "Tests" tests_c tests_m;
  Printf.printf "%-30s %8d %10d\n" "Benches + examples" (bench_c + ex_c) (bench_m + ex_m);
  Printf.printf "%-30s %8d %10d\n" "Total (libraries)" !total_c !total_m

(* ---------- Table 10: automatically selected security parameters ---------- *)

let table10 () =
  print_endline "[Table 10] Security parameters selected for CKKS (128-bit target)";
  print_endline "  (the selection is what a deployment ships; benches execute at Toy scale)";
  hr ();
  Printf.printf "%-10s | %8s %9s %11s %8s %10s\n" "model" "log2(N)" "log2(Q0)" "log2(Delta)"
    "log2(Q)" "bound";
  List.iter
    (fun spec ->
      let c = compiled Pipeline.ace spec in
      let slots = Ace_fhe.Context.slots c.Pipeline.context in
      let sel =
        Param_select.select
          {
            Param_select.scale_bits = 26;
            q0_bits = 29;
            special_bits = 29;
            depth = Pipeline.ace.Pipeline.chain_depth;
            simd_slots = slots;
            security = Ace_fhe.Security.Bits128;
          }
      in
      Printf.printf "%-10s | %8d %9d %11d %8d %10s\n%!" spec.Resnet.model_name
        sel.Param_select.log2_n sel.Param_select.sel_q0_bits sel.Param_select.sel_scale_bits
        sel.Param_select.log2_q
        (if sel.Param_select.driven_by_security then "security" else "SIMD"))
    models

(* ---------- Table 11: inference accuracy under encryption ---------- *)

let table11 ?(n = 4) ?(clear_n = 256) () =
  Printf.printf
    "[Table 11] Accuracy: unencrypted vs encrypted (%d images encrypted, %d clear)\n" n clear_n;
  print_endline "  Synthetic prototype dataset (DESIGN.md); agreement = argmax match between";
  print_endline "  cleartext and encrypted inference on the same model (the paper's criterion).";
  hr ();
  Printf.printf "%-10s | %11s %10s %10s %8s\n" "model" "unencrypted" "encrypted" "agreement"
    "max err";
  List.iter
    (fun spec ->
      let nn = Resnet.build_calibrated spec in
      let data =
        Dataset.generate ~classes:spec.Resnet.classes ~image_size:spec.Resnet.image_size
          ~count:(max n clear_n) ~noise:0.08 ~seed:(500 + spec.Resnet.seed)
      in
      (* Labels induced by the model's own decision on each class's
         noise-free prototype: accuracy then measures robustness of those
         decisions to sample noise, identically defined for the cleartext
         and encrypted sides. *)
      let labels = Dataset.model_labels (Ace_nn.Nn_interp.run1 nn) data in
      let clear_hits = ref 0 in
      for i = 0 to clear_n - 1 do
        let logits = Ace_nn.Nn_interp.run1 nn data.Dataset.images.(i) in
        if Dataset.argmax logits = labels.(i) then incr clear_hits
      done;
      let c = compiled Pipeline.ace spec in
      let keys = keys_for Pipeline.ace spec in
      let enc_hits = ref 0 and agree = ref 0 and worst = ref 0.0 in
      for i = 0 to n - 1 do
        let img = data.Dataset.images.(i) in
        let clear = Ace_nn.Nn_interp.run1 nn img in
        let enc = Pipeline.infer_encrypted c keys ~seed:(900 + i) img in
        if Dataset.argmax enc = labels.(i) then incr enc_hits;
        if Dataset.argmax enc = Dataset.argmax clear then incr agree;
        Array.iteri (fun j v -> worst := max !worst (abs_float (v -. clear.(j)))) enc
      done;
      Printf.printf "%-10s | %10.1f%% %9.1f%% %9.1f%% %8.4f\n%!" spec.Resnet.model_name
        (100.0 *. float_of_int !clear_hits /. float_of_int clear_n)
        (100.0 *. float_of_int !enc_hits /. float_of_int n)
        (100.0 *. float_of_int !agree /. float_of_int n)
        !worst)
    models

(* ---------- Ablation: isolate each design choice (DESIGN.md) ---------- *)

let ablation () =
  print_endline "[Ablation] One optimization disabled at a time (ResNet-8 mini, one image)";
  hr ();
  let spec =
    { Resnet.resnet20 with Resnet.model_name = "resnet8-abl"; depth = 8 }
  in
  let variants =
    [
      Pipeline.ace;
      { Pipeline.ace with Pipeline.strategy_name = "no-conv-regroup"; conv_regroup = false };
      { Pipeline.ace with Pipeline.strategy_name = "no-gemm-bsgs"; gemm_bsgs = false };
      { Pipeline.ace with Pipeline.strategy_name = "no-lazy-rescale"; lazy_rescale = false };
      { Pipeline.ace with Pipeline.strategy_name = "no-min-bootstrap"; min_level_bootstrap = false };
      { Pipeline.library_default with Pipeline.strategy_name = "pow2-keys" };
      Pipeline.expert;
    ]
  in
  Printf.printf "%-18s | %8s %8s %8s %8s %8s | %8s\n" "variant" "time(s)" "rots" "rescales"
    "boots" "keys" "max err";
  let nn = Resnet.build_calibrated spec in
  let rng = Rng.create 4242 in
  let image = Array.init 192 (fun _ -> Rng.float rng 1.0) in
  let expect = Ace_nn.Nn_interp.run1 nn image in
  List.iter
    (fun strategy ->
      let c = Pipeline.compile strategy nn in
      let keys = Pipeline.make_keys c ~seed:9 in
      let s = Stats.of_compiled c in
      Cost.reset ();
      let t0 = Unix.gettimeofday () in
      let got = Pipeline.infer_encrypted c keys ~seed:10 image in
      let dt = Unix.gettimeofday () -. t0 in
      let err = ref 0.0 in
      Array.iteri (fun i v -> err := max !err (abs_float (v -. expect.(i)))) got;
      Printf.printf "%-18s | %8.1f %8d %8d %8d %8d | %8.4f\n%!"
        strategy.Pipeline.strategy_name dt s.Stats.rotations s.Stats.rescales s.Stats.bootstraps
        (Keygen_plan.key_count c.Pipeline.key_plan)
        !err)
    variants

(* ---------- Bechamel micro-benchmarks (one Test.make per workload) ---------- *)

let micro () =
  let open Bechamel in
  let ctx = Param_select.execution_context ~depth:10 ~slots:1024 () in
  let keys = Ace_fhe.Keys.generate ctx ~rng:(Rng.create 9) ~rotations:[ 1; 7 ] in
  let msg = Array.init (Ace_fhe.Context.slots ctx) (fun i -> float_of_int (i mod 5) /. 5.0) in
  let pt = Ace_fhe.Encoder.encode ctx ~level:10 ~scale:(Ace_fhe.Context.scale ctx) msg in
  let ct = Ace_fhe.Eval.encrypt keys ~rng:(Rng.create 10) pt in
  let gemv () =
    let b = Ace_onnx.Builder.create "gemv" in
    Ace_onnx.Builder.input b "x" [| 32 |];
    Ace_onnx.Builder.init_normal b "w" [| 10; 32 |] ~seed:3 ~std:0.15;
    Ace_onnx.Builder.init_normal b "bias" [| 10 |] ~seed:4 ~std:0.05;
    Ace_onnx.Builder.node b ~op:"Gemm" ~inputs:[ "x"; "w"; "bias" ] "y";
    Ace_onnx.Builder.output b "y" [| 10 |];
    Ace_nn.Import.import (Ace_onnx.Builder.finish b)
  in
  let tests =
    Test.make_grouped ~name:"ace"
      [
        Test.make ~name:"fig5.compile-gemv"
          (Staged.stage (fun () -> ignore (Pipeline.compile Pipeline.ace (gemv ()))));
        Test.make ~name:"fig6.rotate" (Staged.stage (fun () -> ignore (Ace_fhe.Eval.rotate keys ct 1)));
        Test.make ~name:"fig6.mul-relin" (Staged.stage (fun () -> ignore (Ace_fhe.Eval.mul keys ct ct)));
        Test.make ~name:"fig6.mul-plain" (Staged.stage (fun () -> ignore (Ace_fhe.Eval.mul_plain ct pt)));
        Test.make ~name:"fig6.rescale"
          (Staged.stage (fun () -> ignore (Ace_fhe.Eval.rescale (Ace_fhe.Eval.mul_plain ct pt))));
        Test.make ~name:"fig6.bootstrap-refresh"
          (Staged.stage (fun () ->
               ignore (Ace_fhe.Bootstrap.refresh_impl keys ~seed:3 ~ordinal:0 ~target_level:4 ct)));
        Test.make ~name:"table11.encode-decode"
          (Staged.stage (fun () -> ignore (Ace_fhe.Encoder.decode ctx pt)));
      ]
  in
  print_endline "[Bechamel] runtime micro-benchmarks backing the figure harnesses";
  hr ();
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols (Toolkit.Instance.monotonic_clock) raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-30s %14.0f ns/op\n" name est
      | _ -> Printf.printf "%-30s (no estimate)\n" name)
    results

(* ---------- PR7: cross-request slot batching + complex packing ---------- *)

(* One conv net, ONE execution context sized for the largest batch factor,
   one compiled schedule per k: the homomorphic op multiset is asserted
   identical for every k (batching changes only mask contents), so the
   amortized per-request latency must fall near-linearly in k. Per-request
   outputs at k=8 are asserted against unbatched encrypted runs — the
   throughput may not be bought with wrong answers. The complex-packing
   pair measures requests/s on a pack-friendly (rotation-free) program
   with the pass off and on: two real streams per slot double the
   requests per ciphertext for the same schedule. *)

let make_batch_bench_nn () =
  let f =
    Irfunc.create ~name:"batchnet" ~level:Level.Nn
      ~params:[ ("x", Types.Tensor [| 2; 4; 4 |]) ]
  in
  let x = Irfunc.param f 0 in
  let wname =
    Irfunc.fresh_const f ~prefix:"w" ~dims:[| 4; 2; 3; 3 |]
      (Array.init (4 * 2 * 3 * 3) (fun i -> 0.05 *. float_of_int ((i mod 7) - 3)))
  in
  let bname = Irfunc.fresh_const f ~prefix:"b" [| 0.1; -0.2; 0.05; 0.0 |] in
  let w = Irfunc.add f (Op.Weight wname) [||] (Types.Tensor [| 4; 2; 3; 3 |]) in
  let b = Irfunc.add f (Op.Weight bname) [||] (Types.Tensor [| 4 |]) in
  let conv =
    Irfunc.add f
      (Op.Nn
         (Op.Conv { Op.out_channels = 4; in_channels = 2; kernel = 3; stride = 1; pad = 1 }))
      [| x; w; b |]
      (Types.Tensor [| 4; 4; 4 |])
  in
  let relu = Irfunc.add f (Op.Nn Op.Relu) [| conv |] (Types.Tensor [| 4; 4; 4 |]) in
  let gap = Irfunc.add f (Op.Nn Op.Global_average_pool) [| relu |] (Types.Tensor [| 4 |]) in
  let gw =
    Irfunc.fresh_const f ~prefix:"gw" ~dims:[| 3; 4 |]
      (Array.init 12 (fun i -> 0.3 *. float_of_int ((i mod 5) - 2)))
  in
  let gb = Irfunc.fresh_const f ~prefix:"gb" [| 0.01; 0.02; -0.01 |] in
  let wg = Irfunc.add f (Op.Weight gw) [||] (Types.Tensor [| 3; 4 |]) in
  let bg = Irfunc.add f (Op.Weight gb) [||] (Types.Tensor [| 3 |]) in
  let gemm =
    Irfunc.add f (Op.Nn (Op.Gemm { Op.rows = 3; cols = 4 })) [| gap; wg; bg |]
      (Types.Tensor [| 3 |])
  in
  Irfunc.set_returns f [ gemm ];
  Verify.verify f;
  f

let make_lin_bench_nn ~h ~w () =
  let f =
    Irfunc.create ~name:"lin" ~level:Level.Nn ~params:[ ("x", Types.Tensor [| 1; h; w |]) ]
  in
  let x = Irfunc.param f 0 in
  let wname = Irfunc.fresh_const f ~prefix:"w" ~dims:[| 1; 1; 1; 1 |] [| 0.7 |] in
  let bname = Irfunc.fresh_const f ~prefix:"b" [| 0.25 |] in
  let wt = Irfunc.add f (Op.Weight wname) [||] (Types.Tensor [| 1; 1; 1; 1 |]) in
  let b = Irfunc.add f (Op.Weight bname) [||] (Types.Tensor [| 1 |]) in
  let conv =
    Irfunc.add f
      (Op.Nn
         (Op.Conv { Op.out_channels = 1; in_channels = 1; kernel = 1; stride = 1; pad = 0 }))
      [| x; wt; b |]
      (Types.Tensor [| 1; h; w |])
  in
  Irfunc.set_returns f [ conv ];
  Verify.verify f;
  f

(* Op multiset by category ("CKKS.rotate[5]" and "[3]" are one category). *)
let op_signature c =
  let h = Hashtbl.create 16 in
  Irfunc.iter c.Pipeline.ckks (fun n ->
      let full = Op.name n.Irfunc.op in
      let key =
        match String.index_opt full '[' with Some i -> String.sub full 0 i | None -> full
      in
      Hashtbl.replace h key (1 + Option.value ~default:0 (Hashtbl.find_opt h key)));
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [])

let batch_bench () =
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  print_endline "[Batch] k requests per ciphertext: shared context, one schedule";
  hr ();
  let nn = make_batch_bench_nn () in
  let kmax = 16 in
  let slots = Pipeline.slots_needed nn * kmax in
  let ctx =
    Param_select.execution_context ~depth:Pipeline.ace.Pipeline.chain_depth ~slots ()
  in
  let input r = Array.init 32 (fun i -> 0.3 *. sin (float_of_int (i + (7 * r)))) in
  let reps = 3 in
  let c1 = Pipeline.compile ~context:ctx ~batch:1 Pipeline.ace nn in
  let keys1 = Pipeline.make_keys c1 ~seed:77 in
  let sig1 = op_signature c1 in
  let op_invariant = ref true in
  let rows =
    List.map
      (fun k ->
        let c = if k = 1 then c1 else Pipeline.compile ~context:ctx ~batch:k Pipeline.ace nn in
        if op_signature c <> sig1 then op_invariant := false;
        let keys = if k = 1 then keys1 else Pipeline.make_keys c ~seed:77 in
        let reqs = Array.init k input in
        let out = ref [||] in
        let (), dt =
          time (fun () ->
              for _ = 1 to reps do
                out := Pipeline.infer_encrypted_batch c keys ~seed:55 reqs
              done)
        in
        let dt = dt /. float_of_int reps in
        Printf.printf "batch k=%-2d  %7.3fs  %8.4fs/request  %5.1f%% of slots carrying data\n%!"
          k dt
          (dt /. float_of_int k)
          (100.0 *. (Stats.of_compiled c).Stats.slot_utilization);
        (k, dt, !out))
      [ 1; 2; 4; 8; kmax ]
  in
  (* accuracy: every k=8 request against its own unbatched encrypted run *)
  let _, _, out8 = List.find (fun (k, _, _) -> k = 8) rows in
  let worst = ref 0.0 in
  Array.iteri
    (fun r img ->
      let solo = Pipeline.infer_encrypted c1 keys1 ~seed:55 img in
      Array.iteri (fun i v -> worst := max !worst (abs_float (v -. out8.(r).(i)))) solo)
    (Array.init 8 input);
  let outputs_ok = !worst < 1e-2 in
  let t_of k =
    let _, t, _ = List.find (fun (k', _, _) -> k' = k) rows in
    t
  in
  let ratio = t_of 8 /. 8.0 /. t_of 1 in
  Printf.printf "k=8: worst |batched - solo| = %.2e; per-request %.3fx of k=1 (bound 0.25)%s\n%!"
    !worst ratio
    (if op_invariant.contents && outputs_ok && ratio <= 0.25 then "" else "  <-- FAIL");
  (* complex packing: two real streams per slot on a rotation-free program *)
  let lin = make_lin_bench_nn ~h:8 ~w:8 () in
  let lctx =
    Param_select.execution_context ~depth:Pipeline.ace.Pipeline.chain_depth
      ~slots:(Pipeline.slots_needed lin * 8) ()
  in
  let cplx_pair =
    List.map
      (fun complex ->
        let c = Pipeline.compile ~context:lctx ~batch:8 ~complex Pipeline.ace lin in
        let keys = Pipeline.make_keys c ~seed:77 in
        let n = Pipeline.requests_per_ct c in
        let reqs =
          Array.init n (fun r -> Array.init 64 (fun i -> 0.4 *. cos (float_of_int (i + r))))
        in
        let (), dt =
          time (fun () ->
              for _ = 1 to reps do
                ignore (Pipeline.infer_encrypted_batch c keys ~seed:55 reqs)
              done)
        in
        let dt = dt /. float_of_int reps in
        Printf.printf "cplx %-3s  %2d requests/ct  %7.3fs  %8.4fs/request\n%!"
          (if complex then "on" else "off")
          n dt
          (dt /. float_of_int n);
        (n, dt))
      [ false; true ]
  in
  let n0, t0, n1, t1 =
    match cplx_pair with [ (n0, t0); (n1, t1) ] -> (n0, t0, n1, t1) | _ -> assert false
  in
  let gain = float_of_int n1 /. t1 /. (float_of_int n0 /. t0) in
  Printf.printf "cplx throughput gain (requests/s, on vs off): %.2fx\n%!" gain;
  let row_json =
    String.concat ", "
      (List.map
         (fun (k, t, _) ->
           Printf.sprintf "{\"batch\": %d, \"seconds\": %.4f, \"per_request_seconds\": %.4f}"
             k t
             (t /. float_of_int k))
         rows)
  in
  let json =
    Printf.sprintf
      "{\"model\": \"batchnet\", \"slots\": %d, \"rows\": [%s], \"op_invariant\": %b, \
       \"k8_per_request_vs_k1\": %.4f, \"bound\": 0.25, \"k8_worst_vs_solo\": %.2e, \
       \"cplx\": {\"model\": \"lin-8x8\", \"batch\": 8, \"plain_requests_per_ct\": %d, \
       \"plain_seconds\": %.4f, \"complex_requests_per_ct\": %d, \"complex_seconds\": %.4f, \
       \"throughput_gain\": %.3f}}"
      slots row_json op_invariant.contents ratio !worst n0 t0 n1 t1 gain
  in
  let per_request = List.map (fun (k, t, _) -> (k, t /. float_of_int k)) rows in
  (json, op_invariant.contents && outputs_ok && ratio <= 0.25, per_request)

(* ---------- --json: machine-readable artifact (BENCH_pr9.json) ---------- *)

(* One JSON blob per run so CI and the growth driver can diff numbers across
   PRs without scraping the human tables. New in pr9: the steady-state GC
   A/B (gc_steady_state) — a resident resnet20 runtime run with the slab
   pool on and off, gated on a >= 5x drop in per-inference major-heap
   words, bit-identical outputs, and a no-worse pooled fhe.add p999/p50
   tail — plus the pool's own hit/miss/drop counters. Carried from pr8:
   per-request amortized latency at k in {1,4,8}, the cost-model
   calibration table, the dropped_events count, the instrumentation-
   overhead gate against BENCH_pr7, the slot-batching k-sweep, the
   scheduler sweep with efficiency-per-core, lazy-pass rows, and the
   key-switch tail gate. *)
let json_schema_version = 9

let json_bench ?(path = "BENCH_pr9.json") () =
  let module Domain_pool = Ace_util.Domain_pool in
  let module Json = Ace_telemetry.Json_lite in
  let default_domains = Domain_pool.size () in
  (* On a 1-core host the default pool is 1; still measure a 4-wide pool so
     the overhead (or speedup, on real hardware) is recorded. *)
  let par_domains = if default_domains > 1 then default_domains else 4 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let compile_rows =
    List.map
      (fun spec ->
        let _, dt = time (fun () -> compiled Pipeline.ace spec) in
        Printf.printf "compile %-12s %6.2fs\n%!" spec.Resnet.model_name dt;
        (spec.Resnet.model_name, dt))
      models
  in
  (* Only resnet20/32 are inferred below; keeping all six compiled
     models (resnet110 alone is most of the set) live through the timed
     sections taxes every major-GC slice taken during inference with
     gigabytes of dead-weight marking — measured at >2x wall clock on
     the first timed run. Drop the ones the rest of the bench never
     reads and return the heap to working-set size. *)
  Hashtbl.iter
    (fun key _ ->
      if key <> "ACE/resnet20" && key <> "ACE/resnet32" then
        Hashtbl.remove compile_cache key)
    (Hashtbl.copy compile_cache);
  Gc.compact ();
  (* micro: forward NTT at production ring degree *)
  let ntt_ns =
    let n = 4096 in
    let q = Ace_rns.Primes.ntt_prime_near ~bits:28 ~ring_degree:n ~below:max_int in
    let plan = Ace_rns.Ntt.make ~modulus:q ~ring_degree:n in
    let r = Rng.create 3 in
    let a = Array.init n (fun _ -> Rng.int r q) in
    let iters = 200 in
    let (), dt =
      time (fun () ->
          for _ = 1 to iters do
            let b = Array.copy a in
            Ace_rns.Ntt.forward plan b
          done)
    in
    1e9 *. dt /. float_of_int iters
  in
  (* micro: gadget keyswitch (rotation), sequential vs parallel pool *)
  let ctx = Param_select.execution_context ~depth:10 ~slots:1024 () in
  let batch_steps = Array.init 8 (fun i -> i + 1) in
  let mkeys =
    Ace_fhe.Keys.generate ctx ~rng:(Rng.create 9) ~rotations:(Array.to_list batch_steps)
  in
  let msg = Array.init (Ace_fhe.Context.slots ctx) (fun i -> float_of_int (i mod 5) /. 5.0) in
  let pt = Ace_fhe.Encoder.encode ctx ~level:10 ~scale:(Ace_fhe.Context.scale ctx) msg in
  let ct = Ace_fhe.Eval.encrypt mkeys ~rng:(Rng.create 10) pt in
  let keyswitch_ns_at d =
    Domain_pool.set_num_domains d;
    let iters = 20 in
    let (), dt =
      time (fun () ->
          for _ = 1 to iters do
            ignore (Ace_fhe.Eval.rotate mkeys ct 1)
          done)
    in
    1e9 *. dt /. float_of_int iters
  in
  let ks_seq = keyswitch_ns_at 1 in
  let ks_par = keyswitch_ns_at par_domains in
  (* micro: the PR2 acceptance pair — a batch of 8 rotations through the
     hoisted path (one decompose + NTT of c1, then per-step permute +
     mul-acc + mod-down) vs the same 8 steps as independent [Eval.rotate]
     calls.  Both numbers are ns per rotation. *)
  let rotate_pair_ns =
    Domain_pool.set_num_domains 1;
    let iters = 10 in
    let nrot = Array.length batch_steps in
    let (), dt_seq =
      time (fun () ->
          for _ = 1 to iters do
            Array.iter (fun s -> ignore (Ace_fhe.Eval.rotate mkeys ct s)) batch_steps
          done)
    in
    let (), dt_hoist =
      time (fun () ->
          for _ = 1 to iters do
            ignore (Ace_fhe.Eval.rotate_batch mkeys ct batch_steps)
          done)
    in
    Domain_pool.set_num_domains default_domains;
    let per x = 1e9 *. x /. float_of_int (iters * nrot) in
    let seq = per dt_seq and hoist = per dt_hoist in
    Printf.printf "rotate x%d: sequential %.2f ms/op, hoisted %.2f ms/op (%.2fx)\n%!" nrot
      (seq /. 1e6) (hoist /. 1e6) (seq /. hoist);
    (seq, hoist)
  in
  let rot_seq_ns, rot_hoist_ns = rotate_pair_ns in
  (* end-to-end: per-image inference on the quick models, then the
     scheduler sweep on the same resnet20 image (determinism means every
     configuration produces identical ciphertexts; only the wall clock may
     differ — which the sweep verifies). *)
  (* Each model is measured in its own window: keygen first, then a
     metrics reset, then the timed inference — so the telemetry snapshot
     (and the key-switch tail gate) covers inference only; the keygen
     warm-up (Eval.warm) exists precisely to keep the one-off
     first-switch costs out of the serving path. One model's keys at a
     time: a second live multi-GB key set would inflate every GC slice
     taken during the timed run (measured as a >2x wall-clock penalty on
     this host) and skew the comparison against earlier artifacts that
     also timed with a single key set resident. *)
  let infer_results =
    List.map
      (fun spec ->
        Domain_pool.set_num_domains default_domains;
        let c = compiled Pipeline.ace spec in
        let keys = Pipeline.make_keys c ~seed:77 in
        Telemetry.reset_metrics ();
        let rng = Rng.create 1001 in
        let dims = 3 * spec.Resnet.image_size * spec.Resnet.image_size in
        let image = Array.init dims (fun _ -> Rng.float rng 1.0) in
        let _, dt = time (fun () -> Pipeline.infer_encrypted c keys ~seed:55 image) in
        Printf.printf "infer %-12s domains=%d %7.2fs\n%!" spec.Resnet.model_name
          default_domains dt;
        (spec.Resnet.model_name, dt, Telemetry.snapshot (), Telemetry.to_json ()))
      [ Resnet.resnet20; Resnet.resnet32 ]
  in
  let infer_rows = List.map (fun (name, dt, _, _) -> (name, dt)) infer_results in
  (* The exported per-category table is resnet20's window — one
     inference workload, no keygen or microbenchmark noise mixed in. *)
  let telemetry_json =
    match infer_results with (_, _, _, tel) :: _ -> tel | [] -> "{}"
  in
  (* Key-switch tail gate: with the keygen warm in place the slowest
     inference-time key switch must stay within [tail_bound] of the
     median. BENCH_pr4 measured 0.178 s max against a 3.6 ms p50 — a 49x
     spike from one-off pool/memo fills that now happen at keygen. The
     residual post-warm spread is structural, not warm-up: a key switch
     costs ~limbs^2 transforms, so the full-width switches at the top of
     the chain sit ~33x over the mid-chain median (measured here after
     the warm landed). The bound is set between the two regimes — it
     trips if the one-off costs ever leak back into the serving path. *)
  let tail_bound = 40.0 in
  let ks_max, ks_p50, ks_ratio =
    (* Worst ratio across the per-model windows. *)
    List.fold_left
      (fun (bm, bp, br) (_, _, snap, _) ->
        match Telemetry.find_stats snap "fhe.key_switch" with
        | Some s
          when s.Telemetry.st_p50 > 0.0
               && s.Telemetry.st_max /. s.Telemetry.st_p50 > br ->
          (s.Telemetry.st_max, s.Telemetry.st_p50, s.Telemetry.st_max /. s.Telemetry.st_p50)
        | _ -> (bm, bp, br))
      (0.0, 0.0, 0.0) infer_results
  in
  Printf.printf "fhe.key_switch tail: max %.4fs p50 %.4fs ratio %.1fx (bound %.0fx)\n%!"
    ks_max ks_p50 ks_ratio tail_bound;
  let stats_json = Stats.to_json (Stats.of_compiled (compiled Pipeline.ace Resnet.resnet20)) in
  (* Cost-model accountability: the VM recorded a measured-µs-per-
     predicted-unit sample for every node it executed during the resnet20
     inference window; the folded table says how far Sched.node_cost's
     RATIOS are from reality, per op category. *)
  let calibration =
    match infer_results with
    | (_, _, snap, _) :: _ -> Stats.calibration_of_snapshot snap
    | [] -> { Stats.cal_reference_us_per_unit = 0.0; cal_rows = [] }
  in
  Printf.printf "cost model reference: %.2f us/unit across %d categories\n%!"
    calibration.Stats.cal_reference_us_per_unit
    (List.length calibration.Stats.cal_rows);
  List.iter
    (fun (r : Stats.calibration_row) ->
      Printf.printf
        "calib %-12s n=%-5d us/unit p50=%8.2f p99=%8.2f mean=%8.2f error-ratio p50=%.2f\n%!"
        r.Stats.cal_category r.Stats.cal_samples r.Stats.cal_us_per_unit_p50
        r.Stats.cal_us_per_unit_p99 r.Stats.cal_us_per_unit_mean r.Stats.cal_error_ratio_p50)
    calibration.Stats.cal_rows;
  let calibration_json = Stats.calibration_to_json calibration in
  (* Instrumentation-overhead gate: the serving-telemetry rebuild (sketch
     observations on every op, calibration samples, request attribution)
     must not make the hot ops measurably slower. Compare rotate/relin
     p50 over the same resnet20 window against the committed BENCH_pr7
     artifact; the allowance is 3% claimed overhead headroom plus the
     sketch's quantile quantization (pr7's reservoir p50 was exact, this
     artifact's is bucketed). *)
  let overhead_bound = 0.03 +. Ace_telemetry.Qsketch.relative_error in
  let pr7_p50s =
    if not (Sys.file_exists "BENCH_pr7.json") then []
    else
      try
        let doc = Json.parse_file "BENCH_pr7.json" in
        match Json.member "telemetry" doc with
        | Some tel -> (
          match Json.member "metrics" tel with
          | Some metrics ->
            List.filter_map
              (fun op ->
                match Json.member op metrics with
                | Some entry -> (
                  match Json.member "p50_s" entry with
                  | Some (Json.Num p) -> Some (op, p)
                  | _ -> None)
                | None -> None)
              [ "fhe.rotate"; "fhe.relinearize" ]
          | None -> [])
        | None -> []
      with Json.Parse_error _ -> []
  in
  let overhead_rows =
    List.filter_map
      (fun (op, pr7) ->
        match infer_results with
        | (_, _, snap, _) :: _ -> (
          match Telemetry.find_stats snap op with
          | Some s when pr7 > 0.0 ->
            let ratio = s.Telemetry.st_p50 /. pr7 in
            Printf.printf "overhead %-16s p50 %.5fs vs pr7 %.5fs (%.3fx, bound %.3f)\n%!" op
              s.Telemetry.st_p50 pr7 ratio (1.0 +. overhead_bound);
            Some (op, pr7, s.Telemetry.st_p50, ratio)
          | _ -> None)
        | [] -> None)
      pr7_p50s
  in
  let overhead_ok =
    List.for_all (fun (_, _, _, ratio) -> ratio <= 1.0 +. overhead_bound) overhead_rows
  in
  (* Lazy-pass op counts per workload. The sign-tower regime (resnet)
     rescales every ct*ct product immediately, so a relin survives at
     each rescale and the counts barely move; the accumulation regime
     (Add trees over products, still at scale Delta^2) collapses to one
     relin per reduction root. Both are recorded — the ratios are the
     honest shape of the optimization, not a single headline number. *)
  let lazy_workloads =
    let gen name cfg seed =
      ( name,
        fun () ->
          Ace_nn.Import.import (Ace_testkit.Graph_gen.generate ~cfg ~seed ()) )
    in
    let act_mlp =
      {
        Ace_testkit.Graph_gen.default with
        Ace_testkit.Graph_gen.max_gemm_layers = 2;
        dims = [| 8 |];
        activation_prob = 1.0;
        residual_prob = 0.0;
        conv_prob = 0.0;
        mul_tree_prob = 0.0;
      }
    in
    [
      ("resnet20", fun () -> Resnet.build_calibrated Resnet.resnet20);
      gen "accum-100" Ace_testkit.Graph_gen.accumulation 100;
      gen "accum-101" Ace_testkit.Graph_gen.accumulation 101;
      gen "act-mlp-7" act_mlp 7;
    ]
  in
  let lazy_rows =
    List.map
      (fun (name, build) ->
        let c =
          match Hashtbl.find_opt compile_cache ("ACE/" ^ name) with
          | Some c -> c
          | None -> Pipeline.compile Pipeline.ace (build ())
        in
        let s = c.Pipeline.lazy_stats in
        let open Ace_ckks_ir.Ckks_lazy in
        let ratio a b = if b = 0 then 1.0 else float_of_int a /. float_of_int b in
        Printf.printf
          "lazy  %-12s relins %d -> %d (%.2fx), rescales %d -> %d (%.2fx), deg2 hw %d\n%!"
          name s.relins_eager s.relins_lazy
          (ratio s.relins_eager s.relins_lazy)
          s.rescales_eager s.rescales_lazy
          (ratio s.rescales_eager s.rescales_lazy)
          s.deg2_high_water;
        Printf.sprintf
          "{\"model\": \"%s\", \"relins_eager\": %d, \"relins_lazy\": %d, \
           \"relin_ratio\": %.3f, \"rescales_eager\": %d, \"rescales_lazy\": %d, \
           \"rescale_ratio\": %.3f, \"deg2_high_water\": %d}"
          name s.relins_eager s.relins_lazy
          (ratio s.relins_eager s.relins_lazy)
          s.rescales_eager s.rescales_lazy
          (ratio s.rescales_eager s.rescales_lazy)
          s.deg2_high_water)
      lazy_workloads
  in
  (* Accumulation end-to-end, lazy on vs off: the regime where the
     eliminated relins are a real fraction of the runtime. *)
  let accum_e2e =
    let nn = Ace_nn.Import.import (Ace_testkit.Graph_gen.generate ~cfg:Ace_testkit.Graph_gen.accumulation ~seed:100 ()) in
    let eager = { Pipeline.ace with Pipeline.strategy_name = "ace-eager"; lazy_passes = false } in
    let run strategy =
      let c = Pipeline.compile strategy nn in
      let keys = Pipeline.make_keys c ~seed:77 in
      let rng = Rng.create 31 in
      let input = Array.init 8 (fun _ -> Rng.float rng 1.6 -. 0.8) in
      let reps = 5 in
      let (), dt =
        time (fun () ->
            for i = 1 to reps do
              ignore (Pipeline.infer_encrypted c keys ~seed:(40 + i) input)
            done)
      in
      dt /. float_of_int reps
    in
    let t_lazy = run Pipeline.ace in
    let t_eager = run eager in
    Printf.printf "accum-100 e2e: lazy %.3fs eager %.3fs (%.2fx)\n%!" t_lazy t_eager
      (t_eager /. t_lazy);
    (t_lazy, t_eager)
  in
  let batch_json, batch_ok, batch_per_request = batch_bench () in
  (* Headline comparison against the committed BENCH_pr4 artifact (same
     model, same domain count — both artifacts record it). *)
  let pr4_resnet20 =
    if not (Sys.file_exists "BENCH_pr4.json") then None
    else
      try
        let doc = Json.parse_file "BENCH_pr4.json" in
        match Json.member "inference_seconds" doc with
        | Some infer -> (
          match (Json.member "resnet20" infer, Json.member "domains_default" doc) with
          | Some (Json.Num s), Some (Json.Num d) -> Some (s, int_of_float d)
          | Some (Json.Num s), None -> Some (s, 1)
          | _ -> None)
        | None -> None
      with Json.Parse_error _ -> None
  in
  (match pr4_resnet20 with
  | Some (baseline, d) ->
    Printf.printf "resnet20 vs BENCH_pr4: %.2fs -> %.2fs (%.2fx) at %d vs %d domains\n%!"
      baseline (List.assoc "resnet20" infer_rows)
      (baseline /. List.assoc "resnet20" infer_rows)
      d default_domains
  | None -> print_endline "BENCH_pr4.json not found; skipping cross-PR comparison");
  (* Scheduler sweep: resnet20, domains x {seq, wavefront}. One encrypted
     input reused throughout; outputs are checked bit-identical across every
     configuration (the run aborts loudly if the determinism contract ever
     broke). Timing runs are untraced; utilization comes from separate
     traced runs below. *)
  let sweep_spec = Resnet.resnet20 in
  let sweep_c = compiled Pipeline.ace sweep_spec in
  let sweep_keys = Pipeline.make_keys sweep_c ~seed:77 in
  let sweep_image =
    let rng = Rng.create 1001 in
    let dims = 3 * sweep_spec.Resnet.image_size * sweep_spec.Resnet.image_size in
    Array.init dims (fun _ -> Rng.float rng 1.0)
  in
  let sweep_ct = Pipeline.encrypt_input sweep_c sweep_keys ~seed:55 sweep_image in
  let reference_out = ref None in
  let sweep_run ~domains ~scheduler =
    Domain_pool.set_num_domains domains;
    let out, dt =
      time (fun () -> Pipeline.run_encrypted ~scheduler sweep_c sweep_keys ~seed:55 sweep_ct)
    in
    (match !reference_out with
    | None -> reference_out := Some out
    | Some r ->
      if not (Array.for_all2 Ace_rns.Rns_poly.equal r.Ace_fhe.Ciphertext.polys out.Ace_fhe.Ciphertext.polys)
      then failwith "scheduler sweep: output not bit-identical to reference");
    Printf.printf "sweep resnet20 domains=%d sched=%-9s %7.2fs\n%!" domains
      (Pipeline.scheduler_name scheduler) dt;
    dt
  in
  let host_cores = Domain.recommended_domain_count () in
  let single_core = host_cores <= 1 in
  if single_core then
    prerr_endline
      "bench: warning: scheduler sweep running on a 1-core host — multi-domain rows \
       measure scheduling overhead, not parallel speedup (host_cores records this)";
  (* Auto-sized to the detected cores: the powers of two up to
     max(8, host_cores), plus host_cores itself when it is not one of
     them — so real hardware always gets a row at its own width. *)
  let sweep_domains =
    List.sort_uniq compare
      (List.filter (fun d -> d >= 1 && d <= 64) [ 1; 2; 4; 8; host_cores ])
  in
  let sweep_rows =
    List.concat_map
      (fun d ->
        List.map
          (fun s -> (d, s, sweep_run ~domains:d ~scheduler:s))
          [ Pipeline.Seq; Pipeline.Wavefront ])
      sweep_domains
  in
  let sweep_seconds ~domains ~scheduler =
    let _, _, t =
      List.find (fun (d, s, _) -> d = domains && s = scheduler) sweep_rows
    in
    t
  in
  (* Per-domain busy time: a traced wavefront run at 4 domains; busy(tid) =
     sum of that worker's per-node "vm." span durations, utilization =
     total busy / (domains * wall). On a single-core host utilization still
     reports how evenly nodes spread over workers; wall-clock speedup
     additionally needs the cores. *)
  let busy_profile ~domains ~scheduler =
    Domain_pool.set_num_domains domains;
    Telemetry.reset_trace ();
    Telemetry.set_tracing true;
    ignore (Pipeline.run_encrypted ~scheduler sweep_c sweep_keys ~seed:55 sweep_ct);
    Telemetry.set_tracing false;
    let evs = Telemetry.events () in
    let busy = Hashtbl.create 8 in
    let t_min = ref infinity and t_max = ref neg_infinity in
    List.iter
      (fun e ->
        let n = e.Telemetry.ev_name in
        if String.length n >= 3 && String.sub n 0 3 = "vm." then begin
          let cur = Option.value ~default:0.0 (Hashtbl.find_opt busy e.Telemetry.ev_tid) in
          Hashtbl.replace busy e.Telemetry.ev_tid (cur +. (e.Telemetry.ev_dur_us /. 1e6));
          t_min := min !t_min (e.Telemetry.ev_ts_us /. 1e6);
          t_max := max !t_max ((e.Telemetry.ev_ts_us +. e.Telemetry.ev_dur_us) /. 1e6)
        end)
      evs;
    Telemetry.reset_trace ();
    let wall = if !t_max > !t_min then !t_max -. !t_min else 0.0 in
    let per_tid =
      List.sort compare (Hashtbl.fold (fun tid b acc -> (tid, b) :: acc) busy [])
    in
    let total = List.fold_left (fun acc (_, b) -> acc +. b) 0.0 per_tid in
    let util = if wall > 0.0 then total /. (float_of_int domains *. wall) else 0.0 in
    Printf.printf "busy  resnet20 domains=%d sched=%-9s wall=%.2fs tids=%d util=%.2f\n%!"
      domains (Pipeline.scheduler_name scheduler) wall (List.length per_tid) util;
    (wall, per_tid, util)
  in
  let busy_json ~domains ~scheduler =
    let wall, per_tid, util = busy_profile ~domains ~scheduler in
    Printf.sprintf
      "{\"domains\": %d, \"scheduler\": \"%s\", \"wall_seconds\": %.4f, \
       \"per_tid_busy_seconds\": {%s}, \"utilization\": %.4f}"
      domains
      (Pipeline.scheduler_name scheduler)
      wall
      (String.concat ", "
         (List.map (fun (tid, b) -> Printf.sprintf "\"%d\": %.4f" tid b) per_tid))
      util
  in
  let busy_seq = busy_json ~domains:4 ~scheduler:Pipeline.Seq in
  let busy_wf = busy_json ~domains:4 ~scheduler:Pipeline.Wavefront in
  Domain_pool.set_num_domains default_domains;
  (* PR9 steady-state GC A/B: a resident runtime (cached weight
     plaintexts, persistent VM) re-running the same resnet20 inference is
     the serving steady state; with the slab pool on, every ciphertext
     buffer the run allocates should come back recycled. Gates: per-
     inference major-heap words pooled must be >= [gc_ratio_bound]x
     smaller than unpooled, outputs bit-identical, and the pooled fhe.add
     tail (p999/p50) no worse than unpooled. Sequential at 1 domain — the
     A/B isolates allocator behaviour, not scheduling. *)
  let gc_ratio_bound = 5.0 in
  let gc_reps = 3 in
  let gc_measure ~pooled =
    Ace_rns.Limb_pool.set_enabled pooled;
    Domain_pool.set_num_domains 1;
    let rt = Pipeline.make_runtime ~scheduler:Pipeline.Seq sweep_c sweep_keys ~seed:55 in
    (* Warm run: fills the plaintext cache, the pool, and the keygen
       memos, so the measured window is pure steady state. *)
    let out = ref (Pipeline.run_encrypted_rt rt sweep_ct) in
    Telemetry.reset_metrics ();
    Ace_rns.Limb_pool.reset_stats ();
    let g0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to gc_reps do
      out := Pipeline.run_encrypted_rt rt sweep_ct
    done;
    let dt = (Unix.gettimeofday () -. t0) /. float_of_int gc_reps in
    let g1 = Gc.quick_stat () in
    let per d = d /. float_of_int gc_reps in
    let add_tail =
      match Telemetry.find_stats (Telemetry.snapshot ()) "fhe.add" with
      | Some s when s.Telemetry.st_p50 > 0.0 -> s.Telemetry.st_p999 /. s.Telemetry.st_p50
      | _ -> 0.0
    in
    ( !out,
      per (g1.Gc.major_words -. g0.Gc.major_words),
      per (g1.Gc.minor_words -. g0.Gc.minor_words),
      per (float_of_int (g1.Gc.major_collections - g0.Gc.major_collections)),
      dt,
      add_tail )
  in
  let pool_was = Ace_rns.Limb_pool.enabled () in
  let out_on, major_on, minor_on, majcol_on, t_on, tail_on = gc_measure ~pooled:true in
  let pool_stats = Ace_rns.Limb_pool.stats () in
  let out_off, major_off, minor_off, majcol_off, t_off, tail_off =
    gc_measure ~pooled:false
  in
  Ace_rns.Limb_pool.set_enabled pool_was;
  Domain_pool.set_num_domains default_domains;
  let gc_identical =
    Array.for_all2 Ace_rns.Rns_poly.equal out_on.Ace_fhe.Ciphertext.polys
      out_off.Ace_fhe.Ciphertext.polys
  in
  let gc_ratio = if major_on > 0.0 then major_off /. major_on else infinity in
  Printf.printf
    "gc A/B resnet20 (seq x%d): major w/infer on=%.3e off=%.3e (%.1fx, bound %.0fx), \
     minor on=%.3e off=%.3e, major GCs/infer on=%.2f off=%.2f, %.2fs vs %.2fs, \
     fhe.add p999/p50 on=%.2f off=%.2f, identical=%b\n%!"
    gc_reps major_on major_off gc_ratio gc_ratio_bound minor_on minor_off majcol_on
    majcol_off t_on t_off tail_on tail_off gc_identical;
  Printf.printf
    "pool steady state: slab hits=%d misses=%d releases=%d dropped=%d row hits=%d misses=%d\n%!"
    pool_stats.Ace_rns.Limb_pool.slab_hits pool_stats.Ace_rns.Limb_pool.slab_misses
    pool_stats.Ace_rns.Limb_pool.slab_releases pool_stats.Ace_rns.Limb_pool.slab_dropped
    pool_stats.Ace_rns.Limb_pool.row_hits pool_stats.Ace_rns.Limb_pool.row_misses;
  let buf = Buffer.create 2048 in
  let obj rows = String.concat ", " rows in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"pr9-zero-alloc-steady-state\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"schema_version\": %d,\n" json_schema_version);
  Buffer.add_string buf (Printf.sprintf "  \"domains_default\": %d,\n" default_domains);
  Buffer.add_string buf (Printf.sprintf "  \"domains_parallel\": %d,\n" par_domains);
  Buffer.add_string buf (Printf.sprintf "  \"host_cores\": %d,\n" host_cores);
  Buffer.add_string buf
    (Printf.sprintf "  \"sweep_single_core\": %b,\n" single_core);
  Buffer.add_string buf
    (Printf.sprintf "  \"compile_seconds\": {%s},\n"
       (obj (List.map (fun (m, t) -> Printf.sprintf "\"%s\": %.4f" m t) compile_rows)));
  Buffer.add_string buf
    (Printf.sprintf "  \"inference_seconds\": {%s},\n"
       (obj (List.map (fun (m, t) -> Printf.sprintf "\"%s\": %.4f" m t) infer_rows)));
  Buffer.add_string buf
    (Printf.sprintf "  \"lazy\": [%s],\n" (String.concat ", " lazy_rows));
  (let t_lazy, t_eager = accum_e2e in
   Buffer.add_string buf
     (Printf.sprintf
        "  \"accum_e2e\": {\"model\": \"accum-100\", \"lazy_seconds\": %.4f, \
         \"eager_seconds\": %.4f, \"speedup\": %.3f},\n"
        t_lazy t_eager (t_eager /. t_lazy)));
  (match pr4_resnet20 with
  | Some (baseline, d) ->
    Buffer.add_string buf
      (Printf.sprintf
         "  \"baseline_pr4\": {\"resnet20_seconds\": %.4f, \"domains\": %d},\n" baseline d);
    Buffer.add_string buf
      (Printf.sprintf "  \"speedup_vs_pr4_resnet20\": %.3f,\n"
         (baseline /. List.assoc "resnet20" infer_rows))
  | None -> Buffer.add_string buf "  \"baseline_pr4\": null,\n");
  Buffer.add_string buf
    (Printf.sprintf
       "  \"keyswitch_tail\": {\"max_s\": %.5f, \"p50_s\": %.5f, \"ratio\": %.2f, \
        \"bound\": %.1f},\n"
       ks_max ks_p50 ks_ratio tail_bound);
  Buffer.add_string buf (Printf.sprintf "  \"batch_sweep\": %s,\n" batch_json);
  Buffer.add_string buf
    (Printf.sprintf "  \"per_request_amortized\": {%s},\n"
       (obj
          (List.filter_map
             (fun (k, s) ->
               if List.mem k [ 1; 4; 8 ] then
                 Some (Printf.sprintf "\"k%d_seconds\": %.4f" k s)
               else None)
             batch_per_request)));
  Buffer.add_string buf
    (Printf.sprintf "  \"cost_model_calibration\": %s,\n" calibration_json);
  Buffer.add_string buf
    (Printf.sprintf "  \"instrumentation_overhead\": {\"bound_ratio\": %.4f%s},\n"
       (1.0 +. overhead_bound)
       (String.concat ""
          (List.map
             (fun (op, pr7, cur, ratio) ->
               Printf.sprintf ", \"%s\": {\"pr7_p50_s\": %.6f, \"p50_s\": %.6f, \"ratio\": %.4f}"
                 op pr7 cur ratio)
             overhead_rows)));
  Buffer.add_string buf
    (Printf.sprintf "  \"dropped_events\": %d,\n" (Telemetry.dropped_events ()));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"gc_steady_state\": {\"model\": \"resnet20\", \"scheduler\": \"seq\", \
        \"reps\": %d, \"pooled\": {\"major_words_per_infer\": %.1f, \
        \"minor_words_per_infer\": %.1f, \"major_collections_per_infer\": %.3f, \
        \"seconds_per_infer\": %.4f, \"fhe_add_p999_over_p50\": %.3f}, \
        \"unpooled\": {\"major_words_per_infer\": %.1f, \"minor_words_per_infer\": %.1f, \
        \"major_collections_per_infer\": %.3f, \"seconds_per_infer\": %.4f, \
        \"fhe_add_p999_over_p50\": %.3f}, \"major_words_ratio\": %.2f, \
        \"ratio_bound\": %.1f, \"bit_identical\": %b, \"pool\": {\"slab_hits\": %d, \
        \"slab_misses\": %d, \"slab_releases\": %d, \"slab_dropped\": %d, \
        \"row_hits\": %d, \"row_misses\": %d}},\n"
       gc_reps major_on minor_on majcol_on t_on tail_on major_off minor_off majcol_off
       t_off tail_off gc_ratio gc_ratio_bound gc_identical
       pool_stats.Ace_rns.Limb_pool.slab_hits pool_stats.Ace_rns.Limb_pool.slab_misses
       pool_stats.Ace_rns.Limb_pool.slab_releases
       pool_stats.Ace_rns.Limb_pool.slab_dropped pool_stats.Ace_rns.Limb_pool.row_hits
       pool_stats.Ace_rns.Limb_pool.row_misses);
  Buffer.add_string buf
    (Printf.sprintf "  \"scheduler_sweep\": [%s],\n"
       (String.concat ", "
          (List.map
             (fun (d, s, t) ->
               (* efficiency_per_core = t(1)/(d * t(d)) for the same
                  scheduler: 1.0 is perfect scaling. On a 1-core host
                  (sweep_single_core above) extra domains only add
                  scheduling overhead, so the column honestly degrades. *)
               let base = sweep_seconds ~domains:1 ~scheduler:s in
               Printf.sprintf
                 "{\"domains\": %d, \"scheduler\": \"%s\", \"seconds\": %.4f, \
                  \"efficiency_per_core\": %.4f}"
                 d (Pipeline.scheduler_name s) t
                 (base /. (float_of_int d *. t)))
             sweep_rows)));
  Buffer.add_string buf
    (Printf.sprintf "  \"busy\": [%s, %s],\n" busy_seq busy_wf);
  (let seq1 = sweep_seconds ~domains:1 ~scheduler:Pipeline.Seq in
   let wf4 = sweep_seconds ~domains:4 ~scheduler:Pipeline.Wavefront in
   Buffer.add_string buf
     (Printf.sprintf
        "  \"scaling\": {\"model\": \"resnet20\", \"sequential_seconds\": %.4f, \
         \"parallel_seconds\": %.4f, \"parallel_domains\": %d, \"parallel_scheduler\": \
         \"wavefront\", \"speedup\": %.3f},\n"
        seq1 wf4 4 (seq1 /. wf4)));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"micro\": {\"ntt_forward_n4096_ns_per_op\": %.0f, \
        \"keyswitch_rotate_seq_ns_per_op\": %.0f, \"keyswitch_rotate_par_ns_per_op\": %.0f, \
        \"rotate_ns_per_op\": %.0f, \"rotate_hoisted_ns_per_op\": %.0f, \
        \"hoisting_speedup\": %.3f},\n"
       ntt_ns ks_seq ks_par rot_seq_ns rot_hoist_ns (rot_seq_ns /. rot_hoist_ns));
  Buffer.add_string buf (Printf.sprintf "  \"stats_resnet20\": %s,\n" stats_json);
  Buffer.add_string buf (Printf.sprintf "  \"telemetry\": %s" (String.trim telemetry_json));
  Buffer.add_string buf "\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" path;
  (* Tail regression gate: fail the bench (artifact already on disk for
     inspection) if the worst inference-time key switch blew past the
     bound — the keygen warm is supposed to have absorbed that spike. *)
  if ks_p50 > 0.0 && ks_ratio > tail_bound then begin
    Printf.eprintf
      "bench: key-switch tail regression: max/p50 = %.1f exceeds bound %.1f\n%!"
      ks_ratio tail_bound;
    exit 1
  end;
  (* Batching acceptance gate: op multiset identical across k, per-request
     outputs within crypto tolerance of unbatched runs, and k=8 amortized
     per-request latency at most 0.25x the k=1 latency. *)
  if not batch_ok then begin
    prerr_endline "bench: batch throughput/invariance gate failed (see [Batch] rows above)";
    exit 1
  end;
  (* Accountability gates: the calibration table must have real samples
     (an empty table means the VM stopped reporting), and the hot-op p50s
     must stay within the instrumentation-overhead allowance of pr7. *)
  if calibration.Stats.cal_rows = [] then begin
    prerr_endline "bench: cost-model calibration table is empty — VM calib metrics missing";
    exit 1
  end;
  if not overhead_ok then begin
    Printf.eprintf
      "bench: instrumentation overhead gate failed: rotate/relin p50 drifted beyond %.1f%% \
       of BENCH_pr7 (see overhead rows above)\n%!"
      (100.0 *. overhead_bound);
    exit 1
  end;
  (* Zero-allocation steady-state gates: recycling must actually bite
     (major-heap words per inference down by the bound), must not change a
     single bit of the output, and must not buy memory with latency tail
     (pooled fhe.add p999/p50 no worse than unpooled, plus sketch
     quantization slack). *)
  if not gc_identical then begin
    prerr_endline "bench: pooled and unpooled outputs are not bit-identical";
    exit 1
  end;
  if gc_ratio < gc_ratio_bound then begin
    Printf.eprintf
      "bench: GC gate failed: pooled major words only %.2fx lower than unpooled \
       (bound %.1fx)\n%!"
      gc_ratio gc_ratio_bound;
    exit 1
  end;
  let tail_slack = 1.0 +. (2.0 *. Ace_telemetry.Qsketch.relative_error) in
  if tail_on > 0.0 && tail_off > 0.0 && tail_on > tail_off *. tail_slack then begin
    Printf.eprintf
      "bench: pooled fhe.add tail regressed: p999/p50 %.2f vs unpooled %.2f\n%!" tail_on
      tail_off;
    exit 1
  end

(* ---------- serving throughput (PR10) ---------- *)

(* requests/s against a live ace-serve daemon at k concurrent client
   connections, k in {1, 4, 8}.  The daemon runs in a second domain of
   this process; each connection pipelines coalescible requests pinned
   to its own batch region, so higher k also exercises the batch-axis
   merge (one homomorphic execution serving several clients).  Every
   point is sanity-checked against cleartext inference before it is
   recorded.  Artifact: BENCH_pr10.json. *)
let serve_bench ?(path = "BENCH_pr10.json") () =
  let module Server = Ace_serve.Server in
  let module Client = Ace_serve.Client in
  let module Model_spec = Ace_serve.Model_spec in
  let spec_str = "gemv:16:4" in
  let spec =
    match Model_spec.parse spec_str with Ok s -> s | Error m -> failwith m
  in
  let socket = Printf.sprintf "/tmp/ace-bench-serve-%d.sock" (Unix.getpid ()) in
  let batch = 8 in
  let cfg =
    {
      Server.default_config with
      socket_path = socket;
      models = [ ("bench", spec) ];
      batch;
      max_queue = 256;
    }
  in
  let server = Server.create cfg in
  let dom = Domain.spawn (fun () -> Server.run server) in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Sys.file_exists socket)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  let ok = function Ok v -> v | Error m -> failwith ("serve bench: " ^ m) in
  let c0 = Client.connect socket in
  let sess =
    ok (Client.prepare c0 ~tenant:"bench" ~model:"bench" ~key_seed:11 ~oracle_seed:12)
  in
  let input = Array.init 16 (fun i -> float_of_int (i + 1) /. 17.0) in
  let expect = Model_spec.reference spec input in
  let check out tag =
    Array.iteri
      (fun i v ->
        if abs_float (v -. expect.(i)) > 1e-2 then
          failwith (Printf.sprintf "serve bench: %s mismatch at %d" tag i))
      out
  in
  check (ok (Client.infer c0 sess ~seed:3 input)) "warmup";
  let total = 24 in
  Printf.printf
    "serve: requests/s vs concurrent clients (model %s, batch %d, %d requests per point)\n"
    spec_str batch total;
  let rows =
    List.map
      (fun k ->
        let per = total / k in
        let conns = Array.init k (fun _ -> Client.connect socket) in
        let payloads =
          Array.init k (fun c ->
              Array.init per (fun r ->
                  Client.encrypt_region sess ~seed:(100 + (c * per) + r) ~region:c input))
        in
        let t0 = Unix.gettimeofday () in
        Array.iteri
          (fun c conn ->
            Array.iteri
              (fun r ct ->
                Client.submit conn sess
                  ~request_id:(Printf.sprintf "bench-%d-%d" c r)
                  ~region:c ~coalesce:true ct)
              payloads.(c))
          conns;
        let replies =
          Array.map (fun conn -> Array.init per (fun _ -> ok (Client.await_result conn))) conns
        in
        let dt = Unix.gettimeofday () -. t0 in
        Array.iteri
          (fun c per_conn ->
            let _, ct = per_conn.(0) in
            check (ok (Client.decrypt sess ~region:c ct)) "served result")
          replies;
        Array.iter Client.close conns;
        let rps = float_of_int total /. dt in
        Printf.printf "  clients=%d  %8.1f req/s  (%.3f s)\n%!" k rps dt;
        (k, total, dt, rps))
      [ 1; 4; 8 ]
  in
  ok (Client.drain c0);
  Client.close c0;
  Domain.join dom;
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema_version\":1,\"bench\":\"serve\",\"model\":\"%s\",\"batch\":%d,\"rows\":["
       spec_str batch);
  List.iteri
    (fun i (k, n, dt, rps) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"clients\":%d,\"requests\":%d,\"seconds\":%.6f,\"rps\":%.3f}" k
           n dt rps))
    rows;
  Buffer.add_string buf "]}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "serve: wrote %s\n%!" path

(* ---------- driver ---------- *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let get_n default =
    let rec go = function
      | "-n" :: v :: _ -> int_of_string v
      | _ :: rest -> go rest
      | [] -> default
    in
    go args
  in
  let cmds = List.filter (fun a -> a <> "-n" && int_of_string_opt a = None) args in
  let run = function
    | "--json" | "json" -> json_bench ()
    | "fig5" -> fig5 ()
    | "fig6" -> fig6 ()
    | "fig6-quick" -> fig6 ~specs:[ Resnet.resnet20; Resnet.resnet32 ] ()
    | "fig7" -> fig7 ()
    | "table8" -> table8 ()
    | "table10" -> table10 ()
    | "table11" -> table11 ~n:(get_n 4) ()
    | "micro" -> micro ()
    | "batch" ->
      let _, _, _ = batch_bench () in
      ()
    | "ablation" -> ablation ()
    | "serve" -> serve_bench ()
    | other -> Printf.eprintf "unknown benchmark %s\n" other
  in
  match cmds with
  | [] ->
    (* Cheap artifacts first so a truncated run still yields most tables. *)
    fig5 ();
    print_newline ();
    table8 ();
    print_newline ();
    table10 ();
    print_newline ();
    fig7 ();
    print_newline ();
    table11 ~n:(get_n 2) ();
    print_newline ();
    fig6 ()
  | cmds -> List.iter run cmds
