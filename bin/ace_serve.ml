(* ace-serve: the persistent encrypted-inference daemon.

     ace_serve --socket /tmp/ace.sock --model demo=gemv:32:8 \
               [--cache-dir DIR] [--strategy ace|expert|library] \
               [--batch N] [--complex] [--max-queue N] [--max-units F]

   Serves every --model over a Unix domain socket using the Ace_serve
   wire protocol. Models compile at startup unless --cache-dir holds a
   matching compiled-schedule artifact, in which case startup skips the
   compiler entirely. SIGTERM/SIGINT drain: queued work finishes, new
   work is refused with a typed reply, then the process exits. Telemetry
   rides the usual knobs (ACE_TRACE, ACE_METRICS_*, ACE_DOMAINS...). *)

module Pipeline = Ace_driver.Pipeline
module Server = Ace_serve.Server
module Model_spec = Ace_serve.Model_spec
open Cmdliner

let strategy_of_string = function
  | "ace" -> Ok Pipeline.ace
  | "expert" -> Ok Pipeline.expert
  | "library" -> Ok Pipeline.library_default
  | s -> Error (`Msg (Printf.sprintf "unknown strategy %S (ace | expert | library)" s))

let strategy_conv =
  Arg.conv
    ( (fun s -> strategy_of_string s),
      fun fmt s -> Format.pp_print_string fmt s.Pipeline.strategy_name )

let model_conv =
  let parse s =
    match String.index_opt s '=' with
    | None -> Error (`Msg (Printf.sprintf "bad model %S (want NAME=SPEC)" s))
    | Some i -> (
      let name = String.sub s 0 i in
      let spec = String.sub s (i + 1) (String.length s - i - 1) in
      if name = "" then Error (`Msg "empty model name")
      else
        match Model_spec.parse spec with
        | Ok m -> Ok (name, m)
        | Error msg -> Error (`Msg msg))
  in
  Arg.conv (parse, fun fmt (n, m) -> Format.fprintf fmt "%s=%s" n (Model_spec.to_string m))

let serve socket models cache_dir strategy batch complex max_queue max_units =
  if models = [] then `Error (false, "at least one --model NAME=SPEC is required")
  else begin
    let cfg =
      {
        Server.default_config with
        socket_path = socket;
        models;
        cache_dir;
        strategy;
        batch;
        complex;
        max_queue;
        max_units;
      }
    in
    let server = Server.create cfg in
    let drain _ = Server.request_drain server in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
    Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
    Printf.eprintf "[ace-serve] listening on %s (%d model%s)\n%!" socket (List.length models)
      (if List.length models = 1 then "" else "s");
    Server.run server;
    Printf.eprintf "[ace-serve] drained, exiting\n%!";
    `Ok ()
  end

let socket_t =
  Arg.(value & opt string "/tmp/ace-serve.sock" & info [ "socket" ] ~docv:"PATH")

let models_t = Arg.(value & opt_all model_conv [] & info [ "model" ] ~docv:"NAME=SPEC")
let cache_t = Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR")
let strategy_t = Arg.(value & opt strategy_conv Pipeline.ace & info [ "strategy" ])
let batch_t = Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N")
let complex_t = Arg.(value & flag & info [ "complex" ])
let max_queue_t = Arg.(value & opt int 64 & info [ "max-queue" ] ~docv:"N")
let max_units_t = Arg.(value & opt float 1e12 & info [ "max-units" ] ~docv:"F")

let cmd =
  let doc = "persistent encrypted-inference daemon" in
  Cmd.v
    (Cmd.info "ace_serve" ~doc)
    Term.(
      ret
        (const serve $ socket_t $ models_t $ cache_t $ strategy_t $ batch_t $ complex_t
       $ max_queue_t $ max_units_t))

let () = exit (Cmd.eval cmd)
