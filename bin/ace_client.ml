(* ace-client: smoke/verification client for the ace-serve daemon.

     ace_client --socket /tmp/ace.sock --model demo \
                [--tenant t0] [--requests N] [--seed S] [--verify]

   Prepares a session (describe, keygen, key upload), submits N
   encrypted inference requests and decrypts the replies. --verify
   checks every decrypted output against the cleartext interpreter and
   exits non-zero on disagreement beyond the usual CKKS tolerance. *)

module Client = Ace_serve.Client
module Model_spec = Ace_serve.Model_spec
open Cmdliner

let run_client socket model tenant requests seed verify spec_str =
  let t = Client.connect socket in
  let finish r =
    Client.close t;
    r
  in
  match Client.prepare t ~tenant ~model ~key_seed:seed ~oracle_seed:(seed + 1) with
  | Error msg -> finish (`Error (false, "prepare: " ^ msg))
  | Ok sess -> (
    let n_in =
      let l = sess.Client.info.Ace_serve.Wire.mi_input_layout in
      l.Ace_vector.Layout.channels * l.height * l.width
    in
    let rng = Ace_util.Rng.create (seed + 2) in
    let images =
      Array.init requests (fun _ ->
          Array.init n_in (fun _ -> (Ace_util.Rng.float rng 2.0) -. 1.0))
    in
    (* Pipeline all requests, then collect replies in order. *)
    Array.iteri
      (fun i image ->
        Client.submit t sess
          ~request_id:(Printf.sprintf "%s-%d" tenant i)
          (Client.encrypt sess ~seed:(seed + 10 + i) image))
      images;
    let failures = ref 0 in
    let ok = ref 0 in
    (try
       for i = 0 to requests - 1 do
         match Client.await_result t with
         | Error msg ->
           incr failures;
           Printf.eprintf "request %d: %s\n%!" i msg
         | Ok (_, blob) -> (
           match Client.decrypt sess ~region:0 blob with
           | Error msg ->
             incr failures;
             Printf.eprintf "request %d: decrypt: %s\n%!" i msg
           | Ok out ->
             if verify then begin
               match Model_spec.parse spec_str with
               | Error msg ->
                 incr failures;
                 Printf.eprintf "bad --spec: %s\n%!" msg
               | Ok spec ->
                 let want = Model_spec.reference spec images.(i) in
                 let err =
                   Array.fold_left max 0.0
                     (Array.mapi (fun j w -> abs_float (w -. out.(j))) want)
                 in
                 if err > 1e-2 then begin
                   incr failures;
                   Printf.eprintf "request %d: max error %g\n%!" i err
                 end
                 else incr ok
             end
             else incr ok)
       done
     with e ->
       incr failures;
       Printf.eprintf "client error: %s\n%!" (Printexc.to_string e));
    Printf.printf "%d/%d requests ok%s\n%!" !ok requests
      (if verify then " (verified against cleartext)" else "");
    finish (if !failures = 0 then `Ok () else `Error (false, "some requests failed")))

let socket_t =
  Arg.(value & opt string "/tmp/ace-serve.sock" & info [ "socket" ] ~docv:"PATH")

let model_t = Arg.(value & opt string "demo" & info [ "model" ] ~docv:"NAME")
let tenant_t = Arg.(value & opt string "t0" & info [ "tenant" ] ~docv:"TENANT")
let requests_t = Arg.(value & opt int 1 & info [ "requests" ] ~docv:"N")
let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S")
let verify_t = Arg.(value & flag & info [ "verify" ])

let spec_t =
  Arg.(value & opt string "" & info [ "spec" ] ~docv:"SPEC" ~doc:"model spec for --verify")

let cmd =
  let doc = "smoke client for ace_serve" in
  Cmd.v
    (Cmd.info "ace_client" ~doc)
    Term.(
      ret
        (const run_client $ socket_t $ model_t $ tenant_t $ requests_t $ seed_t $ verify_t
       $ spec_t))

let () = exit (Cmd.eval cmd)
